//! Region-sharded execution: one logical run as many sub-worlds.
//!
//! A monolithic [`StreamingSim`](super::StreamingSim) world caps out
//! around the paper's 10k players — one event queue, one slab, one
//! core. This module shards a run into independent per-region
//! sub-worlds that exchange cross-shard events (session hops, cloud
//! fallbacks) **only at a tick boundary**, following the one-tick
//! structure of server-authoritative game loops (SNIPPETS snippet 3):
//!
//! 1. **apply inputs** — drain each shard's inbox of routed
//!    [`BoundaryOp`]s into its event queue at the boundary time;
//! 2. **simulate** — advance every sub-world to the boundary, fanned
//!    over execution lanes
//!    ([`cloudfog_pool::for_each_indexed_mut`]: disjoint `&mut`
//!    chunks, so lane count provably cannot change any world's event
//!    stream);
//! 3. **generate events** — sample every world's
//!    [`ShardPressure`] in canonical shard order;
//! 4. **tick-boundary maintenance** — the (sequential) driver plans
//!    handoffs with the pure [`plan_shard_handoffs`], sequences them
//!    through the [`BoundaryLedger`], and routes them sorted by
//!    `(destination, sequence)` — a total order independent of which
//!    lane simulated which shard.
//!
//! **Determinism contract.** The world partition depends only on
//! `(total players, shard capacity, seed)` — never the lane count —
//! and phases 1, 3 and 4 run sequentially in shard order. So a run
//! with 1 lane is bit-identical to the same run with N lanes, which is
//! exactly the property `tests/shard_identity.rs` pins (the sharded
//! analogue of `tests/pool_parallel.rs`).
//!
//! **Bounded per-shard memory.** Every sub-world is sized by
//! `shard_capacity`, not by the total population: a 1M-player run
//! with capacity 1 000 is 1 000 worlds of 1 000 players each, and no
//! shard ever holds an O(total-players) table. Aggregation streams
//! through the keyed [`ShardMerge`] (O(shards + games), not
//! O(players)).
//!
//! **Merge.** Per-shard summaries fold through [`ShardMerge`] — the
//! same keyed, order-independent union the harness uses for matrix
//! cells: inserting the same cell twice is idempotent, inserting a
//! conflicting duplicate panics, and merging reports is commutative /
//! associative with the empty merge as identity
//! (`tests/prop_shard.rs`).

use std::collections::BTreeMap;

use cloudfog_net::geo::Region;
use cloudfog_sim::causal::CausalReport;
use cloudfog_sim::engine::Simulation;
use cloudfog_sim::live::{MetricsRegistry, MetricsSink, SloEngine};
use cloudfog_sim::telemetry::{ScalarMerge, TelemetryConfig, TelemetryReport};
use cloudfog_sim::time::{SimDuration, SimTime};

use crate::adapt::AdaptPolicyKind;
use crate::control::{BoundaryLedger, BoundaryOp, BoundaryOpKind};
use crate::coop::{plan_shard_handoffs, ShardExchangePolicy, ShardPressure};
use crate::fault::{FaultScript, WatchdogParams};
use crate::obs;
use crate::systems::deployment::SystemKind;
use crate::systems::live::{fold_dominant, LiveConfig, LiveReport};
use crate::systems::simulation::{
    ChurnConfig, ChurnStats, Ev, GameQoe, PrefetchConfig, PrefetchStats, RunSummary, StreamingSim,
    StreamingSimConfig,
};

/// Salt mixed into each shard's seed so sibling worlds draw
/// decorrelated universes from one run seed.
const SHARD_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;
/// Salt for per-shard generated chaos scripts.
const SHARD_CHAOS_SALT: u64 = 0x5AAD_C405;
/// Shards draw segment ids from disjoint `i << SEGMENT_BASE_SHIFT`
/// ranges — 2^40 ids per shard before two shards could collide.
const SEGMENT_BASE_SHIFT: u32 = 40;

/// Configuration of one sharded run.
///
/// Construct via [`ShardedSimConfig::builder`].
#[derive(Clone, Debug)]
pub struct ShardedSimConfig {
    /// System under test (every sub-world runs the same system).
    pub kind: SystemKind,
    /// Total population across all shards.
    pub total_players: usize,
    /// Run seed; each shard derives its own decorrelated seed.
    pub seed: u64,
    /// Join-ramp window within each sub-world.
    pub ramp: SimDuration,
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// Tick-boundary interval: how often shards exchange events.
    pub tick: SimDuration,
    /// Max residents per sub-world — the per-shard memory bound. The
    /// shard count is `ceil(total_players / shard_capacity)`,
    /// independent of the lane count.
    pub shard_capacity: usize,
    /// Execution lanes: how many worlds advance concurrently between
    /// boundaries. Any value produces bit-identical output.
    pub lanes: usize,
    /// Per-shard generated chaos (fault script + QoE watchdog).
    pub chaos: bool,
    /// Live-service churn in every sub-world.
    pub churn: bool,
    /// Adaptation policy for every sub-world.
    pub policy: AdaptPolicyKind,
    /// Cross-shard exchange eagerness.
    pub exchange: ShardExchangePolicy,
    /// Per-shard telemetry; when set, the run also produces merged
    /// telemetry and causal reports (with run-global segment ids).
    pub telemetry: Option<TelemetryConfig>,
    /// Predictive prefetch plane in every sub-world (per-shard caches
    /// and forecasters; stats fold in canonical shard order, so lane
    /// count stays bit-invisible).
    pub prefetch: Option<PrefetchConfig>,
}

impl ShardedSimConfig {
    /// Start a typed builder for the given system under test.
    pub fn builder(kind: SystemKind) -> ShardedSimConfigBuilder {
        ShardedSimConfigBuilder {
            cfg: ShardedSimConfig {
                kind,
                total_players: 2_000,
                seed: 0,
                ramp: SimDuration::from_secs(10),
                horizon: SimDuration::from_secs(60),
                tick: SimDuration::from_secs(5),
                shard_capacity: 1_000,
                lanes: 1,
                chaos: false,
                churn: false,
                policy: AdaptPolicyKind::BufferOccupancy,
                exchange: ShardExchangePolicy::default(),
                telemetry: None,
                prefetch: None,
            },
        }
    }

    /// Number of sub-worlds this config partitions into.
    pub fn shard_count(&self) -> usize {
        self.total_players.max(1).div_ceil(self.shard_capacity.max(1))
    }
}

/// Typed builder for [`ShardedSimConfig`].
#[derive(Clone, Debug)]
pub struct ShardedSimConfigBuilder {
    cfg: ShardedSimConfig,
}

impl ShardedSimConfigBuilder {
    /// Total population across all shards.
    pub fn total_players(mut self, players: usize) -> Self {
        self.cfg.total_players = players;
        self
    }

    /// Run seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Join-ramp window within each sub-world.
    pub fn ramp(mut self, ramp: SimDuration) -> Self {
        self.cfg.ramp = ramp;
        self
    }

    /// Simulated horizon.
    pub fn horizon(mut self, horizon: SimDuration) -> Self {
        self.cfg.horizon = horizon;
        self
    }

    /// Tick-boundary interval.
    pub fn tick(mut self, tick: SimDuration) -> Self {
        self.cfg.tick = tick;
        self
    }

    /// Max residents per sub-world (the per-shard memory bound).
    pub fn shard_capacity(mut self, capacity: usize) -> Self {
        self.cfg.shard_capacity = capacity;
        self
    }

    /// Execution lanes (bit-identical output for any value).
    pub fn lanes(mut self, lanes: usize) -> Self {
        self.cfg.lanes = lanes;
        self
    }

    /// Per-shard generated chaos (fault script + watchdog).
    pub fn chaos(mut self, on: bool) -> Self {
        self.cfg.chaos = on;
        self
    }

    /// Live-service churn in every sub-world.
    pub fn churn(mut self, on: bool) -> Self {
        self.cfg.churn = on;
        self
    }

    /// Adaptation policy for every sub-world.
    pub fn policy(mut self, policy: AdaptPolicyKind) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Cross-shard exchange eagerness.
    pub fn exchange(mut self, exchange: ShardExchangePolicy) -> Self {
        self.cfg.exchange = exchange;
        self
    }

    /// Enable per-shard telemetry (and merged reports).
    pub fn telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.cfg.telemetry = Some(telemetry);
        self
    }

    /// Enable the predictive prefetch plane in every sub-world.
    pub fn prefetch(mut self, prefetch: PrefetchConfig) -> Self {
        self.cfg.prefetch = Some(prefetch);
        self
    }

    /// Finalize the config.
    pub fn build(self) -> ShardedSimConfig {
        assert!(self.cfg.tick > SimDuration::ZERO, "tick must be positive");
        self.cfg
    }
}

/// One sub-world's slice of the run, fixed by the partition rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard index (dense, 0-based).
    pub shard: usize,
    /// Home region — shards model region-local cohorts; the exchange
    /// between shards of different home regions is a cross-region hop.
    pub region: Region,
    /// Resident players in this sub-world.
    pub players: usize,
    /// Derived world seed.
    pub seed: u64,
    /// First segment id this world allocates (disjoint per shard).
    pub segment_id_base: u64,
}

/// splitmix64 finalizer — decorrelates shard seeds from consecutive
/// shard indices without any RNG-stream coupling to the worlds.
fn mix_seed(seed: u64, shard: u64) -> u64 {
    let mut z = seed ^ (shard.wrapping_add(1)).wrapping_mul(SHARD_SEED_SALT);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The partition rule: split `total_players` into
/// `ceil(total / capacity)` sub-worlds of near-equal size (sizes
/// differ by at most one), assign home regions round-robin over
/// [`Region::ALL`], and derive per-shard seeds and disjoint
/// segment-id bases. Depends only on `(total, capacity, seed)` —
/// **never the lane count** — which is what makes lane-parallel runs
/// bit-identical.
pub fn partition(total_players: usize, shard_capacity: usize, seed: u64) -> Vec<ShardSpec> {
    let total = total_players.max(1);
    let capacity = shard_capacity.max(1);
    let shards = total.div_ceil(capacity);
    let base = total / shards;
    let remainder = total % shards;
    (0..shards)
        .map(|i| ShardSpec {
            shard: i,
            region: Region::ALL[i % Region::ALL.len()],
            players: base + usize::from(i < remainder),
            seed: mix_seed(seed, i as u64),
            segment_id_base: (i as u64) << SEGMENT_BASE_SHIFT,
        })
        .collect()
}

/// The [`StreamingSimConfig`] a shard spec expands to.
fn world_config(cfg: &ShardedSimConfig, spec: &ShardSpec) -> StreamingSimConfig {
    let mut builder = StreamingSimConfig::builder(cfg.kind)
        .players(spec.players)
        .seed(spec.seed)
        .ramp(cfg.ramp)
        .horizon(cfg.horizon)
        .policy(cfg.policy)
        .segment_id_base(spec.segment_id_base);
    if cfg.chaos {
        builder = builder
            .fault_script(FaultScript::generate(spec.seed ^ SHARD_CHAOS_SALT, cfg.horizon, 2))
            .watchdog(WatchdogParams::default());
    }
    if cfg.churn {
        builder = builder.churn(ChurnConfig::default());
    }
    if let Some(t) = &cfg.telemetry {
        builder = builder.telemetry(t.clone());
    }
    if let Some(p) = cfg.prefetch {
        builder = builder.prefetch(p);
    }
    builder.build()
}

/// One finished sub-world, keyed by shard index — the unit of the
/// order-independent merge.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardCell {
    /// Shard index (the merge key).
    pub shard: usize,
    /// The shard's home region.
    pub region: Region,
    /// The sub-world's own run summary (`summary.events` counts that
    /// world's executed events).
    pub summary: RunSummary,
    /// Lifecycle counters, when churn was enabled.
    pub churn: Option<ChurnStats>,
    /// Prefetch-plane counters, when the prefetch plane was enabled.
    pub prefetch: Option<PrefetchStats>,
}

/// Keyed, order-independent fold of shard outputs — the sharded
/// analogue of the harness's `MatrixReport`.
///
/// * inserting the same cell twice is idempotent;
/// * inserting a *conflicting* duplicate panics (two results for one
///   shard means the run is broken — merging must not mask that);
/// * [`merge`](ShardMerge::merge) is a keyed union: commutative,
///   associative, with [`ShardMerge::new`] as the identity;
/// * aggregates fold in ascending shard order regardless of insertion
///   order, so the merged summary and fingerprint are schedule-
///   independent.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardMerge {
    cells: BTreeMap<usize, ShardCell>,
}

impl ShardMerge {
    /// The empty merge (the monoid identity).
    pub fn new() -> Self {
        ShardMerge::default()
    }

    /// A merge holding one cell.
    pub fn singleton(cell: ShardCell) -> Self {
        let mut m = ShardMerge::new();
        m.insert(cell);
        m
    }

    /// Insert one shard's result. Idempotent on identical duplicates;
    /// panics on a conflicting duplicate.
    pub fn insert(&mut self, cell: ShardCell) {
        match self.cells.entry(cell.shard) {
            std::collections::btree_map::Entry::Occupied(slot) => {
                assert_eq!(
                    slot.get(),
                    &cell,
                    "conflicting duplicate result for shard {}",
                    cell.shard
                );
            }
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(cell);
            }
        }
    }

    /// Keyed union of two merges (commutative and associative).
    pub fn merge(mut self, other: ShardMerge) -> ShardMerge {
        for (_, cell) in other.cells {
            self.insert(cell);
        }
        self
    }

    /// Cells in ascending shard order.
    pub fn cells(&self) -> impl Iterator<Item = &ShardCell> {
        self.cells.values()
    }

    /// Number of shards folded in.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cell has been folded in.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Consume the merge, yielding cells in ascending shard order.
    pub fn into_cells(self) -> Vec<ShardCell> {
        self.cells.into_values().collect()
    }

    /// The run-level summary, folded in ascending shard order (so the
    /// floating-point folds are identical no matter how the merge was
    /// assembled): populations, byte counters and event counts sum;
    /// ratios and means are player-weighted; detection latency is
    /// weighted by injected failures; the per-game breakdown merges
    /// keyed by game.
    ///
    /// Panics on an empty merge — there is no meaningful summary of
    /// zero shards.
    pub fn summary(&self) -> RunSummary {
        let first = self.cells.values().next().expect("summary of an empty shard merge");
        let kind = first.summary.kind;
        let mut players = 0usize;
        let mut weight_total = 0.0f64;
        let mut fog_share = 0.0;
        let mut satisfied = 0.0;
        let mut continuity = 0.0;
        let mut latency = 0.0;
        let mut coverage = 0.0;
        let mut cloud_bytes = 0u64;
        let mut cloud_mbps = 0.0;
        let mut supernode_bytes = 0u64;
        let mut edge_bytes = 0u64;
        let mut scheduler_drops = 0u64;
        let mut failures_injected = 0u64;
        let mut failovers_rescued = 0u64;
        let mut faults_activated = 0u64;
        let mut detection_weighted = 0.0;
        let mut orphaned_player_secs = 0.0;
        let mut watchdog_reassignments = 0u64;
        let mut events = 0u64;
        let mut games: BTreeMap<usize, GameQoe> = BTreeMap::new();
        for cell in self.cells.values() {
            let s = &cell.summary;
            assert_eq!(s.kind, kind, "shard merge mixes systems");
            let w = s.players as f64;
            players += s.players;
            weight_total += w;
            fog_share += s.fog_share * w;
            satisfied += s.satisfied_ratio * w;
            continuity += s.mean_continuity * w;
            latency += s.mean_latency_ms * w;
            coverage += s.coverage * w;
            cloud_bytes += s.cloud_bytes;
            cloud_mbps += s.cloud_mbps;
            supernode_bytes += s.supernode_bytes;
            edge_bytes += s.edge_bytes;
            scheduler_drops += s.scheduler_drops;
            failures_injected += s.failures_injected;
            failovers_rescued += s.failovers_rescued;
            faults_activated += s.faults_activated;
            detection_weighted += s.mean_detection_ms * s.failures_injected as f64;
            orphaned_player_secs += s.orphaned_player_secs;
            watchdog_reassignments += s.watchdog_reassignments;
            events += s.events;
            for g in &s.game_breakdown {
                let gw = g.players as f64;
                let slot = games.entry(g.game.index()).or_insert(GameQoe {
                    game: g.game,
                    players: 0,
                    continuity: 0.0,
                    satisfied: 0.0,
                    latency_ms: 0.0,
                });
                slot.players += g.players;
                slot.continuity += g.continuity * gw;
                slot.satisfied += g.satisfied * gw;
                slot.latency_ms += g.latency_ms * gw;
            }
        }
        let norm = |x: f64| if weight_total > 0.0 { x / weight_total } else { 0.0 };
        RunSummary {
            kind,
            players,
            fog_share: norm(fog_share),
            satisfied_ratio: norm(satisfied),
            mean_continuity: norm(continuity),
            mean_latency_ms: norm(latency),
            coverage: norm(coverage),
            cloud_bytes,
            cloud_mbps,
            supernode_bytes,
            edge_bytes,
            scheduler_drops,
            failures_injected,
            failovers_rescued,
            faults_activated,
            mean_detection_ms: if failures_injected > 0 {
                detection_weighted / failures_injected as f64
            } else {
                0.0
            },
            orphaned_player_secs,
            watchdog_reassignments,
            events,
            game_breakdown: games
                .into_values()
                .map(|mut g| {
                    let gw = g.players as f64;
                    if gw > 0.0 {
                        g.continuity /= gw;
                        g.satisfied /= gw;
                        g.latency_ms /= gw;
                    }
                    g
                })
                .collect(),
        }
    }

    /// FNV-1a fingerprint over every cell in ascending shard order —
    /// the bit-identity gate for the 1-vs-N-lane tests. Two merges
    /// holding the same cells fingerprint identically no matter how
    /// they were assembled.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        for cell in self.cells.values() {
            let line = format!(
                "{}|{:?}|{:?}|{:?}|{:?}\n",
                cell.shard, cell.region, cell.summary, cell.churn, cell.prefetch
            );
            for byte in line.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(PRIME);
            }
        }
        hash
    }
}

/// Cross-shard exchange totals over a whole run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExchangeStats {
    /// Tick boundaries crossed.
    pub boundaries: u64,
    /// Session hops routed between shards.
    pub hops: u64,
    /// Hops refused for lack of a destination slot (the session fell
    /// back through the source shard's cloud path).
    pub fallbacks: u64,
    /// Total boundary ops sequenced (hops + fallbacks).
    pub ops_routed: u64,
}

/// Everything a sharded run produces.
#[derive(Clone, Debug)]
pub struct ShardedRunOutput {
    /// Run-level summary (the deterministic fold of every shard).
    pub summary: RunSummary,
    /// Per-shard cells in ascending shard order.
    pub cells: Vec<ShardCell>,
    /// Cross-shard exchange totals.
    pub exchange: ExchangeStats,
    /// Merged lifecycle counters, when churn was enabled.
    pub churn: Option<ChurnStats>,
    /// Merged prefetch counters (summed, peaks maxed across shards),
    /// when the prefetch plane was enabled.
    pub prefetch: Option<PrefetchStats>,
    /// Merged telemetry (scalar sums / player-weighted means), when
    /// telemetry was enabled.
    pub telemetry: Option<TelemetryReport>,
    /// Merged causal report — segment ids stay run-global because
    /// every shard allocates from a disjoint base.
    pub causal: Option<CausalReport>,
    /// The merge fingerprint ([`ShardMerge::fingerprint`]).
    pub fingerprint: u64,
}

/// One live sub-world plus its driver-side accounting.
struct ShardWorld {
    spec: ShardSpec,
    sim: Simulation<StreamingSim>,
}

impl ShardWorld {
    /// Apply one routed boundary op: seed the events this shard is
    /// responsible for at the boundary time. A `Hop` seeds a `Leave`
    /// in its source shard and a `Join` in its destination (`Join` on
    /// an active resident is a no-op, `Leave` on an idle one likewise,
    /// so a stale op cannot corrupt a world).
    fn apply(&mut self, op: &BoundaryOp) {
        let me = self.spec.shard as u32;
        match op.kind {
            BoundaryOpKind::Hop { depart, arrive } => {
                if op.from_shard == me {
                    self.sim.seed_at(op.at, Ev::Leave(depart));
                }
                if op.to_shard == me {
                    self.sim.seed_at(op.at, Ev::Join(arrive));
                }
            }
            BoundaryOpKind::CloudFallback { player } => {
                if op.from_shard == me {
                    self.sim.seed_at(op.at, Ev::Leave(player));
                }
            }
        }
    }
}

/// The sharded run driver. Stateless — both entry points are
/// associated functions, mirroring [`StreamingSim::run`].
pub struct ShardedSim;

impl ShardedSim {
    /// Run the full sharded simulation.
    pub fn run(cfg: &ShardedSimConfig) -> ShardedRunOutput {
        Self::run_with_probe(cfg, &mut |_| {})
    }

    /// Like [`ShardedSim::run`], with `probe(boundary_index)` invoked
    /// after every completed tick boundary (post-maintenance). The
    /// probe only observes the driver — the event streams, and
    /// therefore the output, are identical to [`ShardedSim::run`].
    /// Exists for the per-shard steady-state allocation gate.
    pub fn run_with_probe(cfg: &ShardedSimConfig, probe: &mut dyn FnMut(u64)) -> ShardedRunOutput {
        Self::run_inner(cfg, probe, None).0
    }

    /// Run with the live ops plane on. Each sub-world is sampled in
    /// canonical shard order at every epoch boundary (the sharded
    /// driver's own tick — the only instant cross-shard state is
    /// coherent), the per-shard registries are folded resident-count
    /// weighted, and one [`SloEngine`](cloudfog_sim::live::SloEngine)
    /// observes the fold. Sampling is read-only, so the
    /// [`ShardedRunOutput`] — fingerprint included — is identical to
    /// [`ShardedSim::run`] on the same config, and because the fold
    /// runs sequentially in shard order the merged registry and alert
    /// log are lane-invariant too.
    pub fn run_live(
        cfg: &ShardedSimConfig,
        live: &LiveConfig,
        sink: &mut dyn MetricsSink,
    ) -> (ShardedRunOutput, LiveReport) {
        let (out, report) = Self::run_inner(cfg, &mut |_| {}, Some((live, sink)));
        (out, report.expect("live plane requested"))
    }

    fn run_inner(
        cfg: &ShardedSimConfig,
        probe: &mut dyn FnMut(u64),
        live: Option<(&LiveConfig, &mut dyn MetricsSink)>,
    ) -> (ShardedRunOutput, Option<LiveReport>) {
        let specs = partition(cfg.total_players, cfg.shard_capacity, cfg.seed);
        let configs: Vec<StreamingSimConfig> =
            specs.iter().map(|spec| world_config(cfg, spec)).collect();
        // World construction (deployment build, join seeding) is the
        // setup-heavy part — fan it over the lanes too. `map_indexed`
        // places results by index, so construction order is
        // lane-invariant.
        let sims = cloudfog_pool::map_indexed(cfg.lanes, &configs, |_, wc| {
            StreamingSim::prepared(wc.clone())
        });
        let mut worlds: Vec<ShardWorld> =
            specs.iter().zip(sims).map(|(spec, sim)| ShardWorld { spec: *spec, sim }).collect();
        let shards = worlds.len();
        // Live ops plane (`None` = zero extra work): one registry per
        // shard — every one installed from the same static vocabulary,
        // which is what makes them foldable — plus one SLO engine
        // observing their canonical-order fold.
        struct Plane<'s> {
            sink: &'s mut dyn MetricsSink,
            regs: Vec<MetricsRegistry>,
            ids: obs::metric::MetricIds,
            engine: SloEngine,
            warmup: SimTime,
            folded: MetricsRegistry,
            samples: u64,
        }
        let mut plane = live.map(|(lc, sink)| {
            let tcfg = cfg.telemetry.clone().unwrap_or_default();
            let mut proto = MetricsRegistry::new();
            let ids = obs::metric::install(&mut proto, &tcfg);
            let regs = (0..shards)
                .map(|_| {
                    let mut reg = MetricsRegistry::new();
                    obs::metric::install(&mut reg, &tcfg);
                    reg
                })
                .collect();
            Plane {
                sink,
                regs,
                ids,
                engine: SloEngine::new(lc.slos.clone()),
                warmup: SimTime::ZERO + lc.warmup_for(cfg.ramp),
                folded: MetricsRegistry::new(),
                samples: 0,
            }
        });
        let end = SimTime::ZERO + cfg.horizon;
        let mut ledger = BoundaryLedger::new();
        let mut inboxes: Vec<Vec<BoundaryOp>> = vec![Vec::new(); shards];
        let mut boundaries = 0u64;
        let mut now = SimTime::ZERO;
        while now < end {
            let boundary = (now + cfg.tick).min(end);
            // 1. apply inputs: drain each shard's inbox into its queue.
            for (world, inbox) in worlds.iter_mut().zip(inboxes.iter_mut()) {
                for op in inbox.drain(..) {
                    world.apply(&op);
                }
            }
            // 2. simulate: every world advances to the boundary.
            cloudfog_pool::for_each_indexed_mut(cfg.lanes, &mut worlds, |_, world| {
                world.sim.set_horizon(boundary);
                world.sim.run();
            });
            // 3. generate events: canonical-order boundary snapshots.
            // 4. tick-boundary maintenance: plan, sequence, route.
            if boundary < end && shards > 1 {
                let pressures: Vec<ShardPressure> = worlds
                    .iter()
                    .map(|w| {
                        let (active, residents, backlog) = w.sim.model.boundary_pressure();
                        ShardPressure { active, residents, backlog }
                    })
                    .collect();
                for handoff in plan_shard_handoffs(&pressures, &cfg.exchange) {
                    let departs =
                        worlds[handoff.from].sim.model.departure_candidates(handoff.count);
                    let arrives = worlds[handoff.to].sim.model.arrival_candidates(departs.len());
                    for (i, depart) in departs.iter().enumerate() {
                        match arrives.get(i) {
                            Some(arrive) => ledger.push(
                                handoff.from as u32,
                                handoff.to as u32,
                                boundary,
                                BoundaryOpKind::Hop { depart: *depart, arrive: *arrive },
                            ),
                            None => ledger.push(
                                handoff.from as u32,
                                handoff.from as u32,
                                boundary,
                                BoundaryOpKind::CloudFallback { player: *depart },
                            ),
                        }
                    }
                }
                for op in ledger.drain_routed() {
                    inboxes[op.to_shard as usize].push(op);
                    if op.from_shard != op.to_shard {
                        inboxes[op.from_shard as usize].push(op);
                    }
                }
            }
            // Live sampling: sequential, canonical shard order, after
            // maintenance — read-only over every world, so the event
            // streams (and the run fingerprint) are untouched.
            if let Some(p) = plane.as_mut() {
                for (world, reg) in worlds.iter().zip(p.regs.iter_mut()) {
                    world.sim.model.live_sample(reg, &p.ids);
                }
                let weighted: Vec<(f64, &MetricsRegistry)> = worlds
                    .iter()
                    .zip(p.regs.iter())
                    .map(|(world, reg)| (world.spec.players as f64, reg))
                    .collect();
                let folded = MetricsRegistry::fold(&weighted);
                drop(weighted);
                p.folded = folded;
                p.samples += 1;
                p.sink.snapshot(boundary, &p.folded);
                // Strictly after warmup — same rationale as the
                // monolithic driver: gauges are all zero until the
                // measurement window opens at the warmup instant.
                if boundary > p.warmup {
                    let sums: Vec<Option<[f64; 5]>> =
                        worlds.iter().map(|w| w.sim.model.causal_component_sums()).collect();
                    for alert in p.engine.observe(boundary, &p.folded, fold_dominant(&sums)) {
                        p.sink.alert(&alert);
                    }
                }
            }
            boundaries += 1;
            probe(boundaries);
            now = boundary;
        }
        // 5. collect: finish every world (lane-parallel — `finish`
        // only touches the world's own state), then summarize and
        // merge sequentially.
        cloudfog_pool::for_each_indexed_mut(cfg.lanes, &mut worlds, |_, world| {
            world.sim.model.finish(end);
        });
        let mut merge = ShardMerge::new();
        for world in &worlds {
            let events = world.sim.events_executed();
            merge.insert(ShardCell {
                shard: world.spec.shard,
                region: world.spec.region,
                summary: world.sim.model.summarize(events, end),
                churn: cfg.churn.then(|| *world.sim.model.churn_stats()),
                prefetch: world.sim.model.prefetch_stats(),
            });
        }
        let summary = merge.summary();
        let fingerprint = merge.fingerprint();
        let churn = cfg.churn.then(|| {
            let mut total = ChurnStats::default();
            for cell in merge.cells() {
                if let Some(c) = &cell.churn {
                    total.absorb(c);
                }
            }
            total
        });
        let prefetch = cfg.prefetch.map(|_| {
            let mut total = PrefetchStats::default();
            for cell in merge.cells() {
                if let Some(p) = &cell.prefetch {
                    total.absorb(p);
                }
            }
            total
        });
        let (telemetry, causal) = if cfg.telemetry.is_some() {
            let per_shard: Vec<TelemetryReport> = merge
                .cells()
                .zip(worlds.iter())
                .map(|(cell, world)| world.sim.model.telemetry_report(&cell.summary))
                .collect();
            let weighted: Vec<(f64, &TelemetryReport)> = merge
                .cells()
                .zip(per_shard.iter())
                .map(|(cell, report)| (cell.summary.players as f64, report))
                .collect();
            let run = format!("{}/sharded{}", cfg.kind.label(), shards);
            let telemetry =
                TelemetryReport::merge_weighted(run.clone(), &weighted, scalar_merge_rule);
            let causal_reports: Vec<CausalReport> =
                worlds.iter().filter_map(|world| world.sim.model.causal_report(&run)).collect();
            let causal = (!causal_reports.is_empty()).then(|| {
                CausalReport::merge_shards(
                    &run,
                    &causal_reports.iter().collect::<Vec<&CausalReport>>(),
                )
            });
            (Some(telemetry), causal)
        } else {
            (None, None)
        };
        let live_report = plane.map(|p| LiveReport {
            registry: p.folded,
            alerts: p.engine.into_log(),
            samples: p.samples,
        });
        let out = ShardedRunOutput {
            summary,
            cells: merge.into_cells(),
            exchange: ExchangeStats {
                boundaries,
                hops: ledger.hops(),
                fallbacks: ledger.fallbacks(),
                ops_routed: ledger.sequenced(),
            },
            churn,
            prefetch,
            telemetry,
            causal,
            fingerprint,
        };
        (out, live_report)
    }
}

/// How each known telemetry scalar combines across shards: totals sum,
/// rates/ratios/means weight by player count, everything unknown
/// defaults to a sum (counters are the common case).
fn scalar_merge_rule(name: &str) -> ScalarMerge {
    match name {
        "fog_share" | "satisfied_ratio" | "mean_continuity" | "mean_latency_ms" | "coverage"
        | "mean_detection_ms" => ScalarMerge::WeightedMean,
        _ if name.starts_with("mean_") || name.ends_with("_ratio") || name.ends_with("_share") => {
            ScalarMerge::WeightedMean
        }
        _ => ScalarMerge::Sum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_capacity_driven_and_lane_invariant() {
        let specs = partition(10_000, 1_000, 7);
        assert_eq!(specs.len(), 10);
        assert_eq!(specs.iter().map(|s| s.players).sum::<usize>(), 10_000);
        assert!(specs.iter().all(|s| s.players == 1_000));
        // Uneven split differs by at most one.
        let uneven = partition(10_001, 1_000, 7);
        assert_eq!(uneven.len(), 11);
        assert_eq!(uneven.iter().map(|s| s.players).sum::<usize>(), 10_001);
        let sizes: Vec<usize> = uneven.iter().map(|s| s.players).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        // Seeds decorrelate, segment bases stay disjoint.
        assert_ne!(specs[0].seed, specs[1].seed);
        assert_eq!(specs[3].segment_id_base, 3 << SEGMENT_BASE_SHIFT);
        // The rule is a pure function of (total, capacity, seed).
        assert_eq!(specs, partition(10_000, 1_000, 7));
    }

    #[test]
    fn shard_merge_panics_on_conflicting_duplicate() {
        let cfg = ShardedSimConfig::builder(SystemKind::Cloud)
            .total_players(60)
            .shard_capacity(30)
            .ramp(SimDuration::from_secs(2))
            .horizon(SimDuration::from_secs(4))
            .build();
        let out = ShardedSim::run(&cfg);
        let mut merge = ShardMerge::new();
        merge.insert(out.cells[0].clone());
        merge.insert(out.cells[0].clone()); // identical duplicate: fine
        assert_eq!(merge.len(), 1);
        let mut conflicting = out.cells[1].clone();
        conflicting.shard = out.cells[0].shard;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            merge.insert(conflicting);
        }));
        assert!(result.is_err(), "conflicting duplicate must panic");
    }

    #[test]
    fn sharded_run_is_lane_invariant_smoke() {
        let run = |lanes: usize| {
            let cfg = ShardedSimConfig::builder(SystemKind::CloudFogA)
                .total_players(90)
                .shard_capacity(30)
                .ramp(SimDuration::from_secs(2))
                .horizon(SimDuration::from_secs(6))
                .tick(SimDuration::from_secs(2))
                .lanes(lanes)
                .seed(11)
                .build();
            ShardedSim::run(&cfg)
        };
        let one = run(1);
        let three = run(3);
        assert_eq!(one.fingerprint, three.fingerprint);
        assert_eq!(one.summary, three.summary);
        assert_eq!(one.exchange, three.exchange);
    }
}
