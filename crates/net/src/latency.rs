//! Latency model: from planar distance to one-way delay.
//!
//! The paper's simulations set inter-node latencies from a PlanetLab
//! trace; its testbed runs on PlanetLab itself. We synthesize the same
//! kind of latencies from first principles, calibrated so the medians
//! match published PlanetLab measurements:
//!
//! ```text
//! one-way(a, b) = dist_km(a, b) × inflation / v_fiber   (propagation)
//!               + access(a) + access(b)                 (last mile)
//!               + pair_offset(a, b)                     (routing detour)
//! ```
//!
//! * `v_fiber ≈ 200 km/ms` (light in fibre is ~2/3 c);
//! * `inflation ≈ 1.5`: real routes are not geodesics;
//! * `access`: per-host last-mile delay, drawn once per host
//!   (log-normal, median ~4 ms — DSL/cable era of the paper);
//! * `pair_offset`: a deterministic per-pair log-normal extra standing
//!   for peering detours, so two equidistant pairs do not get
//!   identical delays.
//!
//! On top of the static part, [`LatencyModel::sample_jitter`] draws
//! per-packet jitter (log-normal around 1.0) at send time.
//!
//! Calibration sanity (asserted in tests): coast-to-coast RTT lands
//! around 70–100 ms and same-metro RTT around 10–25 ms, matching the
//! regime in which the paper's 80 ms network budget makes 2 or 5
//! datacenters insufficient.

use cloudfog_sim::rng::{splitmix64, Rng};
use cloudfog_sim::time::SimDuration;

use crate::geo::Coord;

/// Propagation speed in fibre (km per ms).
pub const FIBER_KM_PER_MS: f64 = 200.0;

/// Parameters of the synthetic latency model.
#[derive(Clone, Copy, Debug)]
pub struct LatencyModel {
    /// Route-length inflation over the geodesic (≥ 1).
    pub inflation: f64,
    /// Median of the per-host last-mile delay (ms).
    pub access_median_ms: f64,
    /// σ of the underlying normal for last-mile delay.
    pub access_sigma: f64,
    /// Median of the per-pair routing-detour extra (ms).
    pub pair_detour_median_ms: f64,
    /// σ of the underlying normal for the pair detour.
    pub pair_detour_sigma: f64,
    /// σ of the underlying normal of per-packet jitter (multiplier
    /// around 1.0; 0 disables jitter).
    pub jitter_sigma: f64,
    /// Seed mixed into all deterministic per-host / per-pair draws.
    pub seed: u64,
}

impl LatencyModel {
    /// Profile used for PeerSim-style simulations (§IV: "communication
    /// latency between nodes in the simulation was set based on the
    /// trace from the PlanetLab").
    pub fn peersim(seed: u64) -> Self {
        LatencyModel {
            inflation: 1.5,
            access_median_ms: 4.0,
            access_sigma: 0.5,
            pair_detour_median_ms: 5.0,
            pair_detour_sigma: 0.6,
            jitter_sigma: 0.10,
            seed,
        }
    }

    /// Profile mimicking the PlanetLab testbed: university hosts with
    /// good uplinks (smaller access delay) but noisier shared nodes
    /// (larger jitter).
    pub fn planetlab(seed: u64) -> Self {
        LatencyModel {
            inflation: 1.6,
            access_median_ms: 2.0,
            access_sigma: 0.4,
            pair_detour_median_ms: 5.0,
            pair_detour_sigma: 0.7,
            jitter_sigma: 0.18,
            seed,
        }
    }

    /// Deterministic last-mile delay of host `host_id` (ms).
    pub fn access_ms(&self, host_id: u64) -> f64 {
        let mut state = self.seed ^ 0xACCE_55ED_0000_0000 ^ host_id.wrapping_mul(0x9E37_79B9);
        let z = gaussian_from(&mut state);
        self.access_median_ms * (self.access_sigma * z).exp()
    }

    /// Deterministic routing-detour extra for the unordered pair
    /// `(a, b)` (ms). Symmetric by construction and scaled with path
    /// length: long paths cross more ASes, IXPs and queueing points,
    /// so their detour grows ~√distance (sub-linear — backbones are
    /// efficient, but never geodesic).
    pub fn pair_detour_ms(&self, a: u64, b: u64, dist_km: f64) -> f64 {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut state = self.seed.wrapping_mul(0xDEAD_BEEF_CAFE_F00D)
            ^ lo.wrapping_mul(0x51_7CC1_B727_2202)
            ^ hi.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let z = gaussian_from(&mut state);
        let distance_scale = (1.0 + dist_km / 400.0).sqrt();
        self.pair_detour_median_ms * distance_scale * (self.pair_detour_sigma * z).exp()
    }

    /// Static one-way delay between two hosts (no per-packet jitter).
    pub fn one_way_ms(&self, a_id: u64, a: &Coord, b_id: u64, b: &Coord) -> f64 {
        let dist_km = a.distance_km(b);
        let propagation = dist_km * self.inflation / FIBER_KM_PER_MS;
        propagation
            + self.access_ms(a_id)
            + self.access_ms(b_id)
            + self.pair_detour_ms(a_id, b_id, dist_km)
    }

    /// Static one-way delay as a duration.
    pub fn one_way(&self, a_id: u64, a: &Coord, b_id: u64, b: &Coord) -> SimDuration {
        SimDuration::from_millis_f64(self.one_way_ms(a_id, a, b_id, b))
    }

    /// Static round-trip time (symmetric paths).
    pub fn rtt_ms(&self, a_id: u64, a: &Coord, b_id: u64, b: &Coord) -> f64 {
        2.0 * self.one_way_ms(a_id, a, b_id, b)
    }

    /// Per-packet jitter multiplier (≥ ~0.7, median 1.0), drawn from
    /// the caller's RNG stream.
    pub fn sample_jitter(&self, rng: &mut Rng) -> f64 {
        if self.jitter_sigma == 0.0 {
            return 1.0;
        }
        rng.log_normal(0.0, self.jitter_sigma)
    }

    /// One jittered one-way delay sample.
    pub fn sample_one_way(
        &self,
        a_id: u64,
        a: &Coord,
        b_id: u64,
        b: &Coord,
        rng: &mut Rng,
    ) -> SimDuration {
        SimDuration::from_millis_f64(self.one_way_ms(a_id, a, b_id, b) * self.sample_jitter(rng))
    }
}

/// One standard-normal variate from a hash-seeded SplitMix64 state
/// (Box–Muller on two mixed uniforms; deterministic in `state`).
fn gaussian_from(state: &mut u64) -> f64 {
    let u1 = to_open_unit(splitmix64(state));
    let u2 = to_unit(splitmix64(state));
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[inline]
fn to_unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn to_open_unit(x: u64) -> f64 {
    1.0 - to_unit(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Coord;

    fn nyc() -> Coord {
        Coord::from_lat_lon(40.71, -74.01)
    }
    fn la() -> Coord {
        Coord::from_lat_lon(34.05, -118.24)
    }

    #[test]
    fn coast_to_coast_rtt_in_planetlab_regime() {
        let model = LatencyModel::peersim(7);
        // Consumer-path coast-to-coast RTTs of the PlanetLab era sat
        // in the 60–140 ms band (Choy et al. measured medians ≥ 80 ms
        // for a third of users even to their *nearest* EC2 site).
        let rtt = model.rtt_ms(1, &nyc(), 2, &la());
        assert!((55.0..140.0).contains(&rtt), "NYC-LA RTT {rtt} ms");
    }

    #[test]
    fn same_metro_latency_is_small() {
        let model = LatencyModel::peersim(7);
        let a = Coord { x: 0.0, y: 0.0 };
        let b = Coord { x: 20.0, y: 10.0 };
        let rtt = model.rtt_ms(10, &a, 11, &b);
        assert!(rtt < 40.0, "metro RTT {rtt} ms");
        assert!(rtt > 2.0, "metro RTT {rtt} ms suspiciously low");
    }

    #[test]
    fn one_way_is_symmetric() {
        let model = LatencyModel::peersim(3);
        let a = nyc();
        let b = la();
        assert!((model.one_way_ms(5, &a, 9, &b) - model.one_way_ms(9, &b, 5, &a)).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let m1 = LatencyModel::peersim(42);
        let m2 = LatencyModel::peersim(42);
        let m3 = LatencyModel::peersim(43);
        let (a, b) = (nyc(), la());
        assert_eq!(m1.one_way_ms(1, &a, 2, &b), m2.one_way_ms(1, &a, 2, &b));
        assert_ne!(m1.one_way_ms(1, &a, 2, &b), m3.one_way_ms(1, &a, 2, &b));
    }

    #[test]
    fn access_delay_is_positive_and_varied() {
        let model = LatencyModel::peersim(1);
        let delays: Vec<f64> = (0..100).map(|h| model.access_ms(h)).collect();
        assert!(delays.iter().all(|&d| d > 0.0));
        let min = delays.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = delays.iter().cloned().fold(0.0, f64::max);
        assert!(max > min * 1.5, "no host heterogeneity: {min}..{max}");
    }

    #[test]
    fn jitter_is_centered_near_one() {
        let model = LatencyModel::planetlab(5);
        let mut rng = Rng::new(9);
        let samples: Vec<f64> = (0..20_000).map(|_| model.sample_jitter(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "jitter mean {mean}");
        assert!(samples.iter().all(|&j| j > 0.0));
    }

    #[test]
    fn zero_sigma_disables_jitter() {
        let mut model = LatencyModel::peersim(5);
        model.jitter_sigma = 0.0;
        let mut rng = Rng::new(1);
        assert_eq!(model.sample_jitter(&mut rng), 1.0);
    }

    #[test]
    fn planetlab_profile_is_noisier() {
        assert!(LatencyModel::planetlab(1).jitter_sigma > LatencyModel::peersim(1).jitter_sigma);
    }
}
