//! Latency traces.
//!
//! The paper's PeerSim experiments set node-to-node latency "based on
//! the trace from the PlanetLab". [`LatencyTrace`] is that artifact: a
//! dense matrix of static one-way delays between `n` hosts. It can be
//! generated from any [`Topology`] (freezing the analytic model into
//! data), saved to and loaded from a simple CSV, and used as a
//! [`DelaySource`] in place of the model — so a simulation can run
//! from a recorded trace exactly the way the paper's did.

use std::fmt::Write as _;
use std::path::Path;

use cloudfog_sim::rng::Rng;
use cloudfog_sim::stats::Welford;
use cloudfog_sim::time::SimDuration;

use crate::topology::{DelaySource, HostId, Topology};

/// A dense matrix of static one-way delays (ms), row-major.
#[derive(Clone, Debug)]
pub struct LatencyTrace {
    n: usize,
    /// `delays[a * n + b]` = one-way ms from a to b.
    delays: Vec<f64>,
    /// Per-packet jitter σ to apply on sampling (0 = none).
    jitter_sigma: f64,
}

/// Errors from trace parsing.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or numeric parse failure with a description.
    Parse(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Parse(msg) => write!(f, "trace parse error: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl LatencyTrace {
    /// Freeze the static delays of `topo` into a trace.
    pub fn from_topology(topo: &Topology) -> Self {
        let n = topo.len();
        let mut delays = vec![0.0; n * n];
        for a in 0..n {
            for b in (a + 1)..n {
                let d = topo.one_way_ms(HostId(a as u32), HostId(b as u32));
                delays[a * n + b] = d;
                delays[b * n + a] = d;
            }
        }
        LatencyTrace { n, delays, jitter_sigma: topo.model().jitter_sigma }
    }

    /// Build directly from a matrix (row-major, `n×n`).
    pub fn from_matrix(n: usize, delays: Vec<f64>, jitter_sigma: f64) -> Self {
        assert_eq!(delays.len(), n * n, "matrix shape mismatch");
        LatencyTrace { n, delays, jitter_sigma }
    }

    /// Number of hosts covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the trace covers no hosts.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Static one-way delay in ms.
    pub fn get(&self, a: usize, b: usize) -> f64 {
        self.delays[a * self.n + b]
    }

    /// Summary statistics over all ordered pairs (a ≠ b).
    pub fn stats(&self) -> Welford {
        let mut w = Welford::new();
        for a in 0..self.n {
            for b in 0..self.n {
                if a != b {
                    w.push(self.delays[a * self.n + b]);
                }
            }
        }
        w
    }

    /// Serialize as CSV: a header line `n,jitter_sigma` then one row
    /// of `n` comma-separated ms values per source host.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.n * self.n * 8);
        let _ = writeln!(out, "{},{}", self.n, self.jitter_sigma);
        for a in 0..self.n {
            let row: Vec<String> = (0..self.n).map(|b| format!("{:.4}", self.get(a, b))).collect();
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Parse the CSV produced by [`LatencyTrace::to_csv`].
    pub fn from_csv(text: &str) -> Result<Self, TraceError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| TraceError::Parse("empty trace".into()))?;
        let mut parts = header.split(',');
        let n: usize = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| TraceError::Parse("bad host count".into()))?;
        let jitter_sigma: f64 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| TraceError::Parse("bad jitter sigma".into()))?;
        let mut delays = Vec::with_capacity(n * n);
        for (i, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            for field in line.split(',') {
                let v: f64 = field.trim().parse().map_err(|_| {
                    TraceError::Parse(format!("bad delay value {field:?} on row {i}"))
                })?;
                if v < 0.0 || !v.is_finite() {
                    return Err(TraceError::Parse(format!("negative/NaN delay on row {i}")));
                }
                delays.push(v);
            }
        }
        if delays.len() != n * n {
            return Err(TraceError::Parse(format!(
                "expected {} values, found {}",
                n * n,
                delays.len()
            )));
        }
        Ok(LatencyTrace { n, delays, jitter_sigma })
    }

    /// Write CSV to a file.
    pub fn save(&self, path: &Path) -> Result<(), TraceError> {
        std::fs::write(path, self.to_csv())?;
        Ok(())
    }

    /// Read CSV from a file.
    pub fn load(path: &Path) -> Result<Self, TraceError> {
        let text = std::fs::read_to_string(path)?;
        Self::from_csv(&text)
    }
}

impl DelaySource for LatencyTrace {
    fn one_way_ms(&self, a: HostId, b: HostId) -> f64 {
        self.get(a.index(), b.index())
    }

    fn sample_one_way(&self, a: HostId, b: HostId, rng: &mut Rng) -> SimDuration {
        let base = self.one_way_ms(a, b);
        let jitter =
            if self.jitter_sigma == 0.0 { 1.0 } else { rng.log_normal(0.0, self.jitter_sigma) };
        SimDuration::from_millis_f64(base * jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use crate::topology::{HostKind, LinkProfile};

    fn topo(n: usize, seed: u64) -> Topology {
        let mut rng = Rng::new(seed);
        let mut t = Topology::new(LatencyModel::planetlab(seed));
        for _ in 0..n {
            t.add_host(HostKind::Player, &LinkProfile::residential(), &mut rng);
        }
        t
    }

    #[test]
    fn trace_matches_topology() {
        let t = topo(25, 11);
        let trace = LatencyTrace::from_topology(&t);
        assert_eq!(trace.len(), 25);
        for a in 0..25 {
            for b in 0..25 {
                let want = t.one_way_ms(HostId(a as u32), HostId(b as u32));
                assert!((trace.get(a, b) - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn csv_roundtrip() {
        let t = topo(10, 12);
        let trace = LatencyTrace::from_topology(&t);
        let parsed = LatencyTrace::from_csv(&trace.to_csv()).unwrap();
        assert_eq!(parsed.len(), trace.len());
        for a in 0..10 {
            for b in 0..10 {
                assert!((parsed.get(a, b) - trace.get(a, b)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(LatencyTrace::from_csv("").is_err());
        assert!(LatencyTrace::from_csv("x,y\n").is_err());
        assert!(LatencyTrace::from_csv("2,0.1\n1.0,2.0\n").is_err()); // missing row
        assert!(LatencyTrace::from_csv("1,0.1\n-5.0\n").is_err()); // negative
    }

    #[test]
    fn stats_are_plausible_planetlab() {
        let t = topo(60, 13);
        let trace = LatencyTrace::from_topology(&t);
        let stats = trace.stats();
        // One-way mean across random US host pairs: ~10–40 ms.
        assert!((5.0..60.0).contains(&stats.mean()), "mean {}", stats.mean());
        assert!(stats.min() >= 0.0);
    }

    #[test]
    fn sampling_respects_jitter_flag() {
        let no_jitter = LatencyTrace::from_matrix(2, vec![0.0, 10.0, 10.0, 0.0], 0.0);
        let mut rng = Rng::new(1);
        let d = no_jitter.sample_one_way(HostId(0), HostId(1), &mut rng);
        assert_eq!(d, SimDuration::from_millis(10));

        let jittery = LatencyTrace::from_matrix(2, vec![0.0, 10.0, 10.0, 0.0], 0.3);
        let samples: Vec<f64> = (0..100)
            .map(|_| jittery.sample_one_way(HostId(0), HostId(1), &mut rng).as_millis_f64())
            .collect();
        let distinct = samples.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(distinct > 50, "jitter should vary samples");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("cloudfog_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        let t = topo(5, 14);
        let trace = LatencyTrace::from_topology(&t);
        trace.save(&path).unwrap();
        let loaded = LatencyTrace::load(&path).unwrap();
        assert_eq!(loaded.len(), 5);
        std::fs::remove_file(&path).ok();
    }
}
