//! Host tables and the delay oracle.
//!
//! A [`Topology`] is the set of simulated machines — players,
//! supernode candidates and datacenters alike — with their true
//! positions, advertised (geolocated) positions, addresses and link
//! capacities. Delay between two hosts comes from a [`DelaySource`]:
//! either the analytic [`crate::latency::LatencyModel`]
//! directly, or a pre-generated [`LatencyTrace`](crate::trace::LatencyTrace)
//! (the PeerSim experiments in the paper were driven by a PlanetLab
//! trace; both paths are supported and interchangeable).

use cloudfog_sim::rng::Rng;
use cloudfog_sim::time::SimDuration;

use crate::bandwidth::Mbps;
use crate::geo::{self, Coord, Region};
use crate::ip::{GeoIpTable, Ipv4};
use crate::latency::LatencyModel;

/// Identifier of a host in a [`Topology`] (dense, 0-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

impl HostId {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a host is, for capacity assignment and reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostKind {
    /// An end-user machine (player).
    Player,
    /// A contributed machine powerful enough to act as a supernode.
    SupernodeCandidate,
    /// A cloud datacenter (effectively unconstrained uplink).
    Datacenter,
    /// An EdgeCloud-style edge server.
    EdgeServer,
}

/// One simulated machine.
#[derive(Clone, Debug)]
pub struct Host {
    /// Dense id.
    pub id: HostId,
    /// True physical position (km plane).
    pub position: Coord,
    /// Anchor city index the host belongs to.
    pub city: usize,
    /// Coarse region.
    pub region: Region,
    /// Synthetic address.
    pub ip: Ipv4,
    /// Role.
    pub kind: HostKind,
    /// Uplink capacity.
    pub upload: Mbps,
    /// Downlink capacity.
    pub download: Mbps,
}

/// Where delays come from.
pub trait DelaySource {
    /// Static one-way delay in ms between host indices `a` and `b`.
    fn one_way_ms(&self, a: HostId, b: HostId) -> f64;

    /// One jittered one-way delay sample.
    fn sample_one_way(&self, a: HostId, b: HostId, rng: &mut Rng) -> SimDuration;

    /// Static round-trip time in ms.
    fn rtt_ms(&self, a: HostId, b: HostId) -> f64 {
        2.0 * self.one_way_ms(a, b)
    }
}

/// The set of simulated machines.
#[derive(Clone, Debug)]
pub struct Topology {
    hosts: Vec<Host>,
    geoip: GeoIpTable,
    model: LatencyModel,
    /// Optional recorded trace overriding the analytic model for the
    /// host pairs it covers — how the paper drove PeerSim from a
    /// PlanetLab measurement trace. Hosts added after the trace was
    /// recorded (e.g. datacenters) fall back to the model.
    trace: Option<crate::trace::LatencyTrace>,
}

/// Uplink/downlink capacity profile for newly added hosts.
#[derive(Clone, Copy, Debug)]
pub struct LinkProfile {
    /// Median uplink (Mbps); per-host draw is log-normal around it.
    pub upload_median: Mbps,
    /// σ of the underlying normal for uplink.
    pub upload_sigma: f64,
    /// Median downlink (Mbps).
    pub download_median: Mbps,
    /// σ of the underlying normal for downlink.
    pub download_sigma: f64,
}

impl LinkProfile {
    /// Residential player links of the paper's era: a few Mbps up,
    /// ~10–20 Mbps down (OnLive recommended a 5 Mbps downlink).
    pub fn residential() -> Self {
        LinkProfile {
            upload_median: Mbps(3.0),
            upload_sigma: 0.5,
            download_median: Mbps(15.0),
            download_sigma: 0.5,
        }
    }

    /// Contributed supernode machines: organization/enthusiast uplinks.
    pub fn supernode() -> Self {
        LinkProfile {
            upload_median: Mbps(40.0),
            upload_sigma: 0.4,
            download_median: Mbps(100.0),
            download_sigma: 0.3,
        }
    }

    /// Datacenter / edge-server links: effectively unconstrained for
    /// a single experiment.
    pub fn datacenter() -> Self {
        LinkProfile {
            upload_median: Mbps(10_000.0),
            upload_sigma: 0.0,
            download_median: Mbps(10_000.0),
            download_sigma: 0.0,
        }
    }

    fn sample(&self, rng: &mut Rng) -> (Mbps, Mbps) {
        let up = if self.upload_sigma == 0.0 {
            self.upload_median
        } else {
            Mbps(self.upload_median.0 * rng.log_normal(0.0, self.upload_sigma))
        };
        let down = if self.download_sigma == 0.0 {
            self.download_median
        } else {
            Mbps(self.download_median.0 * rng.log_normal(0.0, self.download_sigma))
        };
        (up, down)
    }
}

impl Topology {
    /// An empty topology using `model` as its delay oracle.
    pub fn new(model: LatencyModel) -> Self {
        Topology { hosts: Vec::new(), geoip: GeoIpTable::new(), model, trace: None }
    }

    /// Drive delays from a recorded trace for the host pairs it
    /// covers (later-added hosts use the analytic model). This is the
    /// paper's PeerSim setup: "communication latency between nodes in
    /// the simulation was set based on the trace from the PlanetLab".
    pub fn attach_trace(&mut self, trace: crate::trace::LatencyTrace) {
        self.trace = Some(trace);
    }

    /// The attached trace, if any.
    pub fn trace(&self) -> Option<&crate::trace::LatencyTrace> {
        self.trace.as_ref()
    }

    /// Add a host scattered around a weighted-random anchor city.
    pub fn add_host(&mut self, kind: HostKind, links: &LinkProfile, rng: &mut Rng) -> HostId {
        let city = geo::sample_city(rng);
        self.add_host_in_city(kind, links, city, rng)
    }

    /// Add a host scattered around a specific anchor city.
    pub fn add_host_in_city(
        &mut self,
        kind: HostKind,
        links: &LinkProfile,
        city: usize,
        rng: &mut Rng,
    ) -> HostId {
        let position = geo::scatter_around(city, rng);
        self.add_host_at(kind, links, position, city, rng)
    }

    /// Add a host at an exact position (e.g. a datacenter site).
    pub fn add_host_at(
        &mut self,
        kind: HostKind,
        links: &LinkProfile,
        position: Coord,
        city: usize,
        rng: &mut Rng,
    ) -> HostId {
        let id = HostId(self.hosts.len() as u32);
        let ip = self.geoip.allocate(city);
        let (upload, download) = links.sample(rng);
        self.hosts.push(Host {
            id,
            position,
            city,
            region: geo::ANCHOR_CITIES[city].region,
            ip,
            kind,
            upload,
            download,
        });
        id
    }

    /// Host record.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.index()]
    }

    /// All hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True iff no hosts.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// The latency model backing this topology.
    pub fn model(&self) -> &LatencyModel {
        &self.model
    }

    /// Geolocated (city-accurate) position of a host — what the cloud
    /// sees when it resolves the host's IP, *not* the true position.
    pub fn geolocated(&self, id: HostId) -> Coord {
        self.geoip.locate(self.host(id).ip).expect("host IPs always come from our plan")
    }

    /// Geolocation distance between two hosts in km (what the cloud
    /// can compute from IPs; used for supernode candidate search).
    pub fn geo_distance_km(&self, a: HostId, b: HostId) -> f64 {
        self.geolocated(a).distance_km(&self.geolocated(b))
    }

    /// True distance between two hosts in km.
    pub fn true_distance_km(&self, a: HostId, b: HostId) -> f64 {
        self.host(a).position.distance_km(&self.host(b).position)
    }
}

impl DelaySource for Topology {
    fn one_way_ms(&self, a: HostId, b: HostId) -> f64 {
        if a == b {
            return 0.0;
        }
        if let Some(trace) = &self.trace {
            if a.index() < trace.len() && b.index() < trace.len() {
                return trace.get(a.index(), b.index());
            }
        }
        let ha = self.host(a);
        let hb = self.host(b);
        self.model.one_way_ms(a.0 as u64, &ha.position, b.0 as u64, &hb.position)
    }

    fn sample_one_way(&self, a: HostId, b: HostId, rng: &mut Rng) -> SimDuration {
        if a == b {
            return SimDuration::ZERO;
        }
        SimDuration::from_millis_f64(self.one_way_ms(a, b) * self.model.sample_jitter(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_topology(n: usize, seed: u64) -> Topology {
        let mut rng = Rng::new(seed);
        let mut topo = Topology::new(LatencyModel::peersim(seed));
        for _ in 0..n {
            topo.add_host(HostKind::Player, &LinkProfile::residential(), &mut rng);
        }
        topo
    }

    #[test]
    fn hosts_get_dense_ids_and_valid_ips() {
        let topo = small_topology(50, 1);
        assert_eq!(topo.len(), 50);
        for (i, h) in topo.hosts().iter().enumerate() {
            assert_eq!(h.id.index(), i);
            assert!(topo.geolocated(h.id).distance_km(&h.position) < 500.0);
        }
    }

    #[test]
    fn geolocation_is_city_accurate_not_host_accurate() {
        let topo = small_topology(100, 2);
        // Geolocated position is the city centre: distance to the true
        // position is the metro scatter, almost never exactly zero.
        let mut nonzero = 0;
        for h in topo.hosts() {
            let err = topo.geolocated(h.id).distance_km(&h.position);
            assert!(err < geo::METRO_SCATTER_KM * 8.0);
            if err > 0.1 {
                nonzero += 1;
            }
        }
        assert!(nonzero > 90, "geolocation should usually be imperfect");
    }

    #[test]
    fn delay_source_is_symmetric_and_zero_on_self() {
        let topo = small_topology(20, 3);
        let a = HostId(3);
        let b = HostId(17);
        assert_eq!(topo.one_way_ms(a, a), 0.0);
        assert!((topo.one_way_ms(a, b) - topo.one_way_ms(b, a)).abs() < 1e-12);
        assert_eq!(topo.rtt_ms(a, b), 2.0 * topo.one_way_ms(a, b));
    }

    #[test]
    fn deterministic_rebuild() {
        let t1 = small_topology(30, 9);
        let t2 = small_topology(30, 9);
        for (a, b) in t1.hosts().iter().zip(t2.hosts()) {
            assert_eq!(a.position, b.position);
            assert_eq!(a.ip, b.ip);
            assert_eq!(a.upload.0, b.upload.0);
        }
    }

    #[test]
    fn link_profiles_are_ordered_sensibly() {
        let mut rng = Rng::new(4);
        let (res_up, _) = LinkProfile::residential().sample(&mut rng);
        let (sn_up, _) = LinkProfile::supernode().sample(&mut rng);
        let (dc_up, _) = LinkProfile::datacenter().sample(&mut rng);
        assert!(dc_up.0 > sn_up.0);
        assert!(sn_up.0 > res_up.0 || sn_up.0 > 5.0);
        assert_eq!(dc_up.0, 10_000.0, "datacenter links are deterministic");
    }

    #[test]
    fn attached_trace_overrides_model_for_covered_pairs() {
        let mut topo = small_topology(10, 7);
        // Freeze a doctored trace: every covered delay is exactly 42 ms.
        let n = topo.len();
        let trace = crate::trace::LatencyTrace::from_matrix(n, vec![42.0; n * n], 0.0);
        topo.attach_trace(trace);
        assert_eq!(topo.one_way_ms(HostId(0), HostId(9)), 42.0);
        // Hosts added after recording fall back to the model.
        let mut rng = Rng::new(1);
        let late = topo.add_host(HostKind::Datacenter, &LinkProfile::datacenter(), &mut rng);
        let d = topo.one_way_ms(HostId(0), late);
        assert_ne!(d, 42.0, "uncovered pair must use the model");
        assert!(d > 0.0);
        // Self-delay stays zero even under the doctored trace.
        assert_eq!(topo.one_way_ms(HostId(3), HostId(3)), 0.0);
        assert!(topo.trace().is_some());
    }

    #[test]
    fn freezing_and_attaching_own_trace_is_identity() {
        let mut topo = small_topology(15, 8);
        let before: Vec<f64> = (0..15)
            .flat_map(|a| (0..15).map(move |b| (a, b)))
            .map(|(a, b)| topo.one_way_ms(HostId(a), HostId(b)))
            .collect();
        let trace = crate::trace::LatencyTrace::from_topology(&topo);
        topo.attach_trace(trace);
        let after: Vec<f64> = (0..15)
            .flat_map(|a| (0..15).map(move |b| (a, b)))
            .map(|(a, b)| topo.one_way_ms(HostId(a), HostId(b)))
            .collect();
        for (x, y) in before.iter().zip(&after) {
            assert!((x - y).abs() < 1e-9, "trace of self must be an identity");
        }
    }

    #[test]
    fn datacenter_placement_at_exact_coords() {
        let mut rng = Rng::new(5);
        let mut topo = Topology::new(LatencyModel::planetlab(5));
        let princeton = Coord::from_lat_lon(40.34, -74.66);
        let id = topo.add_host_at(
            HostKind::Datacenter,
            &LinkProfile::datacenter(),
            princeton,
            5,
            &mut rng,
        );
        assert_eq!(topo.host(id).position, princeton);
        assert_eq!(topo.host(id).kind, HostKind::Datacenter);
    }
}
