//! Bandwidth units and the fair-share upload model.
//!
//! The paper accounts bandwidth in two places: the *cloud*'s outbound
//! traffic (the cost driver, Figures 7a/b) and each *supernode*'s
//! upload capacity `c_j`, shared by the players it serves. We model a
//! sender's uplink as a single FIFO port of fixed capacity: when `k`
//! flows are active each gets `capacity / k` (TCP-style fair share —
//! the PlanetLab experiments used TCP), and a segment's transmission
//! delay is `size / share`.

use cloudfog_sim::time::SimDuration;

/// Bits per megabit.
const BITS_PER_MBIT: f64 = 1_000_000.0;

/// A link rate in megabits per second.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Mbps(pub f64);

impl Mbps {
    /// Bytes transferred per microsecond at this rate.
    pub fn bytes_per_micro(self) -> f64 {
        self.0 * BITS_PER_MBIT / 8.0 / 1_000_000.0
    }

    /// Time to push `bytes` onto the wire at this rate.
    pub fn transmission_time(self, bytes: u64) -> SimDuration {
        if self.0 <= 0.0 {
            return SimDuration::MAX;
        }
        SimDuration::from_micros((bytes as f64 / self.bytes_per_micro()).ceil() as u64)
    }

    /// Kilobits per second.
    pub fn as_kbps(self) -> f64 {
        self.0 * 1_000.0
    }

    /// From kilobits per second.
    pub fn from_kbps(kbps: f64) -> Mbps {
        Mbps(kbps / 1_000.0)
    }
}

/// A sender's uplink: fixed capacity fairly shared by active flows.
#[derive(Clone, Copy, Debug)]
pub struct UploadPort {
    /// Port capacity.
    pub capacity: Mbps,
    /// Number of concurrently active flows.
    pub active_flows: u32,
}

impl UploadPort {
    /// A port with the given capacity and no active flows.
    pub fn new(capacity: Mbps) -> Self {
        UploadPort { capacity, active_flows: 0 }
    }

    /// Per-flow fair share at the current flow count (full capacity
    /// when idle — the next flow gets everything).
    pub fn fair_share(&self) -> Mbps {
        if self.active_flows <= 1 {
            self.capacity
        } else {
            Mbps(self.capacity.0 / self.active_flows as f64)
        }
    }

    /// Register a flow start.
    pub fn open_flow(&mut self) {
        self.active_flows += 1;
    }

    /// Register a flow end.
    pub fn close_flow(&mut self) {
        debug_assert!(self.active_flows > 0, "closing a flow on an idle port");
        self.active_flows = self.active_flows.saturating_sub(1);
    }

    /// Transmission time of `bytes` for one flow at the current share.
    pub fn transmission_time(&self, bytes: u64) -> SimDuration {
        self.fair_share().transmission_time(bytes)
    }

    /// Utilization if `demand` Mbps were requested (capped at 1).
    pub fn utilization(&self, demand: Mbps) -> f64 {
        if self.capacity.0 <= 0.0 {
            return 1.0;
        }
        (demand.0 / self.capacity.0).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_time_scales_linearly() {
        let r = Mbps(8.0); // 1 MB/s
        assert_eq!(r.transmission_time(1_000_000), SimDuration::from_secs(1));
        assert_eq!(r.transmission_time(500_000), SimDuration::from_millis(500));
    }

    #[test]
    fn kbps_roundtrip() {
        let r = Mbps::from_kbps(1_800.0);
        assert!((r.0 - 1.8).abs() < 1e-12);
        assert!((r.as_kbps() - 1_800.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_never_finishes() {
        assert_eq!(Mbps(0.0).transmission_time(1), SimDuration::MAX);
    }

    #[test]
    fn fair_share_splits_capacity() {
        let mut port = UploadPort::new(Mbps(100.0));
        assert_eq!(port.fair_share().0, 100.0);
        port.open_flow();
        assert_eq!(port.fair_share().0, 100.0);
        port.open_flow();
        port.open_flow();
        port.open_flow();
        assert_eq!(port.fair_share().0, 25.0);
        port.close_flow();
        assert!((port.fair_share().0 - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn segment_time_grows_with_contention() {
        let mut port = UploadPort::new(Mbps(10.0));
        port.open_flow();
        let solo = port.transmission_time(125_000);
        port.open_flow();
        let shared = port.transmission_time(125_000);
        assert_eq!(solo, SimDuration::from_millis(100));
        assert_eq!(shared, SimDuration::from_millis(200));
    }

    #[test]
    fn utilization_caps_at_one() {
        let port = UploadPort::new(Mbps(50.0));
        assert!((port.utilization(Mbps(25.0)) - 0.5).abs() < 1e-12);
        assert_eq!(port.utilization(Mbps(500.0)), 1.0);
    }
}
