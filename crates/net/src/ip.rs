//! Synthetic IPv4 allocation and geolocation.
//!
//! The paper locates players and supernodes by IP address ("node
//! locations and coordinates can be determined by IP addresses
//! \[20\], \[21\]") and has the cloud compute distances from those
//! coordinates. We reproduce the mechanism with a synthetic address
//! plan: each anchor city owns one or more /16 prefixes, hosts get
//! addresses inside their city's prefix, and [`GeoIpTable`] maps an
//! address back to the city centre — i.e. geolocation is *city
//! accurate, not host accurate*, exactly like commercial IP-geo
//! databases. The residual error (host scatter within the metro) is
//! what the player-side latency probing in supernode assignment has
//! to absorb, which keeps the protocol honest.

use std::fmt;

use crate::geo::{Coord, ANCHOR_CITIES};

/// A synthetic IPv4 address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// Dotted-quad octets.
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// The /16 prefix (upper 16 bits).
    pub fn prefix16(self) -> u16 {
        (self.0 >> 16) as u16
    }
}

impl fmt::Debug for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Base of the synthetic address space: 10.0.0.0/8 style private
/// space, one /16 per city starting here.
const BASE_PREFIX: u32 = 0x0A00_0000; // 10.0.0.0

/// Allocates addresses per city and geolocates them back.
#[derive(Clone, Debug, Default)]
pub struct GeoIpTable {
    /// Next host number within each city's /16.
    next_host: Vec<u16>,
}

impl GeoIpTable {
    /// An empty allocator covering all anchor cities.
    pub fn new() -> Self {
        GeoIpTable { next_host: vec![0; ANCHOR_CITIES.len()] }
    }

    /// Allocate the next address in `city_idx`'s prefix.
    ///
    /// Panics if a city's /16 is exhausted (65 536 hosts — far beyond
    /// any experiment in the paper).
    pub fn allocate(&mut self, city_idx: usize) -> Ipv4 {
        let host = self.next_host[city_idx];
        self.next_host[city_idx] = host.checked_add(1).expect("city /16 exhausted");
        Ipv4(BASE_PREFIX | ((city_idx as u32) << 16) | host as u32)
    }

    /// City index an address belongs to, if it is in our plan.
    pub fn city_of(&self, ip: Ipv4) -> Option<usize> {
        if ip.0 & 0xFF00_0000 != BASE_PREFIX {
            return None;
        }
        let city = ((ip.0 >> 16) & 0xFF) as usize;
        (city < ANCHOR_CITIES.len()).then_some(city)
    }

    /// Geolocate: the city-centre coordinate for the address (the
    /// database answer, not the host's true position).
    pub fn locate(&self, ip: Ipv4) -> Option<Coord> {
        self.city_of(ip).map(|c| ANCHOR_CITIES[c].coord())
    }

    /// Number of addresses allocated in `city_idx` so far.
    pub fn allocated_in(&self, city_idx: usize) -> u32 {
        self.next_host[city_idx] as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_sequential_within_city() {
        let mut table = GeoIpTable::new();
        let a = table.allocate(3);
        let b = table.allocate(3);
        assert_eq!(a.prefix16(), b.prefix16());
        assert_eq!(b.0, a.0 + 1);
        assert_eq!(table.allocated_in(3), 2);
    }

    #[test]
    fn different_cities_get_different_prefixes() {
        let mut table = GeoIpTable::new();
        let a = table.allocate(0);
        let b = table.allocate(1);
        assert_ne!(a.prefix16(), b.prefix16());
    }

    #[test]
    fn locate_roundtrips_to_city_centre() {
        let mut table = GeoIpTable::new();
        for (city, anchor) in ANCHOR_CITIES.iter().enumerate() {
            let ip = table.allocate(city);
            assert_eq!(table.city_of(ip), Some(city));
            let loc = table.locate(ip).unwrap();
            assert_eq!(loc.distance_km(&anchor.coord()), 0.0);
        }
    }

    #[test]
    fn foreign_addresses_do_not_geolocate() {
        let table = GeoIpTable::new();
        assert_eq!(table.city_of(Ipv4(0xC0A8_0001)), None); // 192.168.0.1
        assert_eq!(table.locate(Ipv4(0x0A_FF0000)), None); // city 255
    }

    #[test]
    fn display_is_dotted_quad() {
        assert_eq!(format!("{}", Ipv4(0x0A01_0002)), "10.1.0.2");
    }
}
