//! # cloudfog-net
//!
//! Synthetic network substrate for the CloudFog reproduction: the
//! stand-in for the paper's PlanetLab trace and testbed.
//!
//! * [`geo`] — planar continental-US map, metro anchors, host scatter.
//! * [`ip`] — synthetic IPv4 plan + city-accurate geolocation (the
//!   mechanism the cloud uses to find "physically close" supernodes).
//! * [`latency`] — distance → delay model calibrated to PlanetLab-era
//!   RTTs (coast-to-coast ≈ 70–100 ms RTT).
//! * [`bandwidth`] — Mbps units, transmission times, fair-share uplink.
//! * [`gilbert`] — Gilbert–Elliott two-state burst-loss channel, the
//!   packet-loss overlay the chaos layer drives.
//! * [`topology`] — host tables and the [`topology::DelaySource`] oracle.
//! * [`trace`] — freeze delays into a CSV trace and replay it, exactly
//!   how the paper fed a PlanetLab trace into PeerSim.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bandwidth;
pub mod geo;
pub mod gilbert;
pub mod ip;
pub mod latency;
pub mod topology;
pub mod trace;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::bandwidth::{Mbps, UploadPort};
    pub use crate::geo::{Coord, Region, ANCHOR_CITIES};
    pub use crate::gilbert::GilbertElliott;
    pub use crate::ip::{GeoIpTable, Ipv4};
    pub use crate::latency::LatencyModel;
    pub use crate::topology::{DelaySource, Host, HostId, HostKind, LinkProfile, Topology};
    pub use crate::trace::LatencyTrace;
}
