//! Geography: a planar model of the continental United States.
//!
//! The paper places 10 000 simulated players (PeerSim) and 750
//! PlanetLab hosts across the US and reasons about "physically close"
//! supernodes found via IP geolocation. We reproduce that with a flat
//! map: WGS-84 city coordinates are projected onto a kilometre grid
//! with an equirectangular projection centred on the population
//! centroid of the US — at continental scale the projection error is
//! a few percent, far below the latency jitter it feeds into.
//!
//! [`ANCHOR_CITIES`] lists 48 metro/university anchors (every
//! PlanetLab-era site region is represented); populations scatter
//! around anchors with a Gaussian "metro radius".

use cloudfog_sim::rng::Rng;

/// Projection origin: near the U.S. population centroid (Missouri).
const ORIGIN_LAT_DEG: f64 = 38.0;
const ORIGIN_LON_DEG: f64 = -92.0;
/// Kilometres per degree of latitude.
const KM_PER_DEG_LAT: f64 = 110.574;
/// Kilometres per degree of longitude at the origin latitude.
const KM_PER_DEG_LON: f64 = 111.320 * 0.788; // cos(38°) ≈ 0.788

/// A position on the planar map, in kilometres from the origin
/// (x grows east, y grows north).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Coord {
    /// East–west offset (km).
    pub x: f64,
    /// North–south offset (km).
    pub y: f64,
}

impl Coord {
    /// Project WGS-84 degrees onto the planar map.
    pub fn from_lat_lon(lat: f64, lon: f64) -> Coord {
        Coord {
            x: (lon - ORIGIN_LON_DEG) * KM_PER_DEG_LON,
            y: (lat - ORIGIN_LAT_DEG) * KM_PER_DEG_LAT,
        }
    }

    /// Euclidean distance to `other` in km.
    pub fn distance_km(&self, other: &Coord) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// Coarse U.S. region, used for IP allocation and reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// New England + Mid-Atlantic.
    Northeast,
    /// The South Atlantic seaboard.
    Southeast,
    /// East North Central + West North Central.
    Midwest,
    /// Texas and the south-central states.
    South,
    /// Mountain states.
    Mountain,
    /// Pacific coast.
    West,
}

impl Region {
    /// All regions, in a stable order.
    pub const ALL: [Region; 6] = [
        Region::Northeast,
        Region::Southeast,
        Region::Midwest,
        Region::South,
        Region::Mountain,
        Region::West,
    ];

    /// A stable small integer id (index into [`Region::ALL`]).
    pub fn index(self) -> usize {
        Region::ALL.iter().position(|&r| r == self).expect("region in ALL")
    }
}

/// A metro anchor: a place where simulated hosts cluster.
#[derive(Clone, Copy, Debug)]
pub struct City {
    /// Display name.
    pub name: &'static str,
    /// WGS-84 latitude (degrees).
    pub lat: f64,
    /// WGS-84 longitude (degrees).
    pub lon: f64,
    /// Coarse region.
    pub region: Region,
    /// Relative population weight (larger ⇒ more hosts nearby).
    pub weight: f64,
}

impl City {
    /// Planar position of the city centre.
    pub fn coord(&self) -> Coord {
        Coord::from_lat_lon(self.lat, self.lon)
    }
}

/// 48 metro/university anchors covering the continental US.
///
/// Weights are rough metro-population proportions; exact values only
/// shape the spatial density of players, which the paper does not pin
/// down beyond "nationwide".
pub const ANCHOR_CITIES: [City; 48] = [
    City { name: "New York, NY", lat: 40.71, lon: -74.01, region: Region::Northeast, weight: 19.0 },
    City { name: "Newark, NJ", lat: 40.74, lon: -74.17, region: Region::Northeast, weight: 2.0 },
    City { name: "Boston, MA", lat: 42.36, lon: -71.06, region: Region::Northeast, weight: 4.9 },
    City {
        name: "Philadelphia, PA",
        lat: 39.95,
        lon: -75.17,
        region: Region::Northeast,
        weight: 6.2,
    },
    City {
        name: "Pittsburgh, PA",
        lat: 40.44,
        lon: -79.99,
        region: Region::Northeast,
        weight: 2.3,
    },
    City { name: "Princeton, NJ", lat: 40.34, lon: -74.66, region: Region::Northeast, weight: 0.5 },
    City { name: "Ithaca, NY", lat: 42.44, lon: -76.50, region: Region::Northeast, weight: 0.3 },
    City { name: "Buffalo, NY", lat: 42.89, lon: -78.88, region: Region::Northeast, weight: 1.1 },
    City { name: "Hartford, CT", lat: 41.76, lon: -72.67, region: Region::Northeast, weight: 1.2 },
    City {
        name: "Washington, DC",
        lat: 38.91,
        lon: -77.04,
        region: Region::Southeast,
        weight: 6.3,
    },
    City { name: "Baltimore, MD", lat: 39.29, lon: -76.61, region: Region::Southeast, weight: 2.8 },
    City { name: "Richmond, VA", lat: 37.54, lon: -77.44, region: Region::Southeast, weight: 1.3 },
    City {
        name: "Raleigh-Durham, NC",
        lat: 35.79,
        lon: -78.64,
        region: Region::Southeast,
        weight: 2.0,
    },
    City { name: "Charlotte, NC", lat: 35.23, lon: -80.84, region: Region::Southeast, weight: 2.6 },
    City { name: "Atlanta, GA", lat: 33.75, lon: -84.39, region: Region::Southeast, weight: 6.0 },
    City { name: "Clemson, SC", lat: 34.68, lon: -82.84, region: Region::Southeast, weight: 0.3 },
    City { name: "Miami, FL", lat: 25.76, lon: -80.19, region: Region::Southeast, weight: 6.1 },
    City { name: "Orlando, FL", lat: 28.54, lon: -81.38, region: Region::Southeast, weight: 2.6 },
    City { name: "Tampa, FL", lat: 27.95, lon: -82.46, region: Region::Southeast, weight: 3.2 },
    City { name: "Nashville, TN", lat: 36.16, lon: -86.78, region: Region::Southeast, weight: 2.0 },
    City { name: "Chicago, IL", lat: 41.88, lon: -87.63, region: Region::Midwest, weight: 9.5 },
    City {
        name: "Urbana-Champaign, IL",
        lat: 40.11,
        lon: -88.21,
        region: Region::Midwest,
        weight: 0.3,
    },
    City { name: "Detroit, MI", lat: 42.33, lon: -83.05, region: Region::Midwest, weight: 4.3 },
    City { name: "Ann Arbor, MI", lat: 42.28, lon: -83.74, region: Region::Midwest, weight: 0.4 },
    City { name: "Cleveland, OH", lat: 41.50, lon: -81.69, region: Region::Midwest, weight: 2.1 },
    City { name: "Columbus, OH", lat: 39.96, lon: -83.00, region: Region::Midwest, weight: 2.1 },
    City { name: "Cincinnati, OH", lat: 39.10, lon: -84.51, region: Region::Midwest, weight: 2.2 },
    City {
        name: "Indianapolis, IN",
        lat: 39.77,
        lon: -86.16,
        region: Region::Midwest,
        weight: 2.1,
    },
    City { name: "Minneapolis, MN", lat: 44.98, lon: -93.27, region: Region::Midwest, weight: 3.7 },
    City { name: "Madison, WI", lat: 43.07, lon: -89.40, region: Region::Midwest, weight: 0.7 },
    City { name: "St. Louis, MO", lat: 38.63, lon: -90.20, region: Region::Midwest, weight: 2.8 },
    City { name: "Kansas City, MO", lat: 39.10, lon: -94.58, region: Region::Midwest, weight: 2.2 },
    City { name: "Dallas, TX", lat: 32.78, lon: -96.80, region: Region::South, weight: 7.6 },
    City { name: "Houston, TX", lat: 29.76, lon: -95.37, region: Region::South, weight: 7.1 },
    City { name: "Austin, TX", lat: 30.27, lon: -97.74, region: Region::South, weight: 2.3 },
    City { name: "San Antonio, TX", lat: 29.42, lon: -98.49, region: Region::South, weight: 2.6 },
    City { name: "Oklahoma City, OK", lat: 35.47, lon: -97.52, region: Region::South, weight: 1.4 },
    City { name: "New Orleans, LA", lat: 29.95, lon: -90.07, region: Region::South, weight: 1.3 },
    City { name: "Denver, CO", lat: 39.74, lon: -104.99, region: Region::Mountain, weight: 3.0 },
    City {
        name: "Salt Lake City, UT",
        lat: 40.76,
        lon: -111.89,
        region: Region::Mountain,
        weight: 1.3,
    },
    City { name: "Phoenix, AZ", lat: 33.45, lon: -112.07, region: Region::Mountain, weight: 5.0 },
    City { name: "Las Vegas, NV", lat: 36.17, lon: -115.14, region: Region::Mountain, weight: 2.3 },
    City {
        name: "Albuquerque, NM",
        lat: 35.08,
        lon: -106.65,
        region: Region::Mountain,
        weight: 0.9,
    },
    City { name: "Seattle, WA", lat: 47.61, lon: -122.33, region: Region::West, weight: 4.0 },
    City { name: "Portland, OR", lat: 45.52, lon: -122.68, region: Region::West, weight: 2.5 },
    City { name: "San Francisco, CA", lat: 37.77, lon: -122.42, region: Region::West, weight: 4.7 },
    City { name: "Los Angeles, CA", lat: 34.05, lon: -118.24, region: Region::West, weight: 13.2 },
    City { name: "San Diego, CA", lat: 32.72, lon: -117.16, region: Region::West, weight: 3.3 },
];

/// Standard deviation of host scatter around an anchor (km): hosts in
/// a metro are tens of km from its centre.
pub const METRO_SCATTER_KM: f64 = 30.0;

/// Draw a weighted anchor city index.
pub fn sample_city(rng: &mut Rng) -> usize {
    let total: f64 = ANCHOR_CITIES.iter().map(|c| c.weight).sum();
    let mut u = rng.f64() * total;
    for (i, c) in ANCHOR_CITIES.iter().enumerate() {
        u -= c.weight;
        if u <= 0.0 {
            return i;
        }
    }
    ANCHOR_CITIES.len() - 1
}

/// Scatter a host position around city `city_idx`.
pub fn scatter_around(city_idx: usize, rng: &mut Rng) -> Coord {
    let c = ANCHOR_CITIES[city_idx].coord();
    Coord { x: c.x + rng.normal(0.0, METRO_SCATTER_KM), y: c.y + rng.normal(0.0, METRO_SCATTER_KM) }
}

/// The anchor city nearest to `coord` (linear scan; 48 anchors).
pub fn nearest_city(coord: &Coord) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in ANCHOR_CITIES.iter().enumerate() {
        let d = coord.distance_km(&c.coord());
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_distances_are_plausible() {
        // NYC ↔ LA great-circle distance ≈ 3 940 km; the planar
        // projection should land within ~8 %.
        let nyc = Coord::from_lat_lon(40.71, -74.01);
        let la = Coord::from_lat_lon(34.05, -118.24);
        let d = nyc.distance_km(&la);
        assert!((3_600.0..4_300.0).contains(&d), "NYC-LA {d} km");

        // Princeton ↔ UCLA are the paper's two PlanetLab datacenters.
        let princeton = Coord::from_lat_lon(40.34, -74.66);
        let ucla = Coord::from_lat_lon(34.07, -118.44);
        let d2 = princeton.distance_km(&ucla);
        assert!((3_600.0..4_300.0).contains(&d2), "Princeton-UCLA {d2} km");

        // Short hop: Boston ↔ NYC ≈ 300 km.
        let boston = Coord::from_lat_lon(42.36, -71.06);
        let d3 = nyc.distance_km(&boston);
        assert!((250.0..400.0).contains(&d3), "NYC-Boston {d3} km");
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Coord::from_lat_lon(40.0, -100.0);
        let b = Coord::from_lat_lon(35.0, -90.0);
        assert_eq!(a.distance_km(&b), b.distance_km(&a));
        assert_eq!(a.distance_km(&a), 0.0);
    }

    #[test]
    fn city_table_covers_all_regions() {
        for region in Region::ALL {
            assert!(ANCHOR_CITIES.iter().any(|c| c.region == region), "no anchor in {region:?}");
        }
    }

    #[test]
    fn weighted_sampling_prefers_big_metros() {
        let mut rng = Rng::new(1);
        let mut counts = [0u32; ANCHOR_CITIES.len()];
        for _ in 0..50_000 {
            counts[sample_city(&mut rng)] += 1;
        }
        let nyc = ANCHOR_CITIES.iter().position(|c| c.name.starts_with("New York")).unwrap();
        let clemson = ANCHOR_CITIES.iter().position(|c| c.name.starts_with("Clemson")).unwrap();
        assert!(counts[nyc] > counts[clemson] * 10);
        // Every city is reachable.
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn scatter_stays_near_anchor() {
        let mut rng = Rng::new(2);
        let idx = 0;
        for _ in 0..1000 {
            let p = scatter_around(idx, &mut rng);
            let d = p.distance_km(&ANCHOR_CITIES[idx].coord());
            assert!(d < METRO_SCATTER_KM * 8.0, "scatter {d} km");
        }
    }

    #[test]
    fn nearest_city_of_anchor_is_itself() {
        for (i, c) in ANCHOR_CITIES.iter().enumerate() {
            let nearest = nearest_city(&c.coord());
            // A couple of anchors are close (NYC/Newark); accept any
            // anchor within 25 km.
            let d = ANCHOR_CITIES[nearest].coord().distance_km(&c.coord());
            assert!(
                nearest == i || d < 25.0,
                "{} resolved to {}",
                c.name,
                ANCHOR_CITIES[nearest].name
            );
        }
    }

    #[test]
    fn region_index_is_stable() {
        for (i, r) in Region::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }
}
