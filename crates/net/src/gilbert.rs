//! Gilbert–Elliott two-state burst-loss channel.
//!
//! The classic model for access-network packet loss: the link wanders
//! between a *Good* state (losses rare and independent) and a *Bad*
//! state (losses dense), with geometric sojourn times. Burstiness —
//! the thing a Bernoulli loss rate cannot express — is exactly what
//! degrades streaming QoE: a 1 % loss rate concentrated in 200 ms
//! bursts wipes out whole segments while the same rate spread evenly
//! is absorbed by the loss tolerance.
//!
//! The chain composes with the log-normal jitter of
//! [`crate::latency::LatencyModel`]: jitter perturbs *when* packets
//! arrive, the Gilbert–Elliott overlay decides *whether* they do. All
//! randomness comes from the caller's [`Rng`] stream, so runs stay
//! deterministic per seed.

use cloudfog_sim::rng::Rng;

/// A Gilbert–Elliott channel: per-packet loss driven by a two-state
/// Markov chain.
#[derive(Clone, Debug)]
pub struct GilbertElliott {
    /// P(Good → Bad) per packet.
    pub p_gb: f64,
    /// P(Bad → Good) per packet.
    pub p_bg: f64,
    /// Loss probability while Good.
    pub loss_good: f64,
    /// Loss probability while Bad.
    pub loss_bad: f64,
    /// Current state.
    in_bad: bool,
}

impl GilbertElliott {
    /// A channel with explicit transition and loss probabilities.
    /// Probabilities are clamped to [0, 1]; the chain starts Good.
    pub fn new(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64) -> Self {
        GilbertElliott {
            p_gb: p_gb.clamp(0.0, 1.0),
            p_bg: p_bg.clamp(0.0, 1.0),
            loss_good: loss_good.clamp(0.0, 1.0),
            loss_bad: loss_bad.clamp(0.0, 1.0),
            in_bad: false,
        }
    }

    /// A bursty channel parameterized the way operators think about
    /// it: a target long-run loss rate and a mean burst length in
    /// packets. The Bad state loses `loss_bad` of its packets; the
    /// Good state is clean.
    pub fn bursty(mean_loss: f64, mean_burst_packets: f64, loss_bad: f64) -> Self {
        let loss_bad = loss_bad.clamp(1e-6, 1.0);
        let mean_loss = mean_loss.clamp(0.0, loss_bad);
        // Mean Bad sojourn = 1/p_bg packets.
        let p_bg = 1.0 / mean_burst_packets.max(1.0);
        // Steady state: π_bad = p_gb / (p_gb + p_bg); mean loss =
        // π_bad × loss_bad  ⇒  solve for p_gb.
        let pi_bad = (mean_loss / loss_bad).min(0.999_999);
        let p_gb = p_bg * pi_bad / (1.0 - pi_bad);
        GilbertElliott::new(p_gb, p_bg, 0.0, loss_bad)
    }

    /// Stationary probability of being in the Bad state.
    pub fn steady_state_bad(&self) -> f64 {
        if self.p_gb + self.p_bg == 0.0 {
            return 0.0;
        }
        self.p_gb / (self.p_gb + self.p_bg)
    }

    /// Long-run packet loss rate implied by the parameters.
    pub fn mean_loss(&self) -> f64 {
        let pi_bad = self.steady_state_bad();
        pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good
    }

    /// Advance one packet: step the chain, then decide loss in the new
    /// state. Returns true if the packet is lost.
    pub fn step(&mut self, rng: &mut Rng) -> bool {
        let flip = if self.in_bad { self.p_bg } else { self.p_gb };
        if rng.chance(flip) {
            self.in_bad = !self.in_bad;
        }
        let loss = if self.in_bad { self.loss_bad } else { self.loss_good };
        rng.chance(loss)
    }

    /// Walk `packets` packets through the channel and return how many
    /// are lost. One RNG stream drives the whole walk, so consecutive
    /// segments through the same channel see correlated (bursty) loss.
    pub fn lose_of(&mut self, packets: u32, rng: &mut Rng) -> u32 {
        let mut lost = 0;
        for _ in 0..packets {
            if self.step(rng) {
                lost += 1;
            }
        }
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_run_loss_matches_steady_state() {
        let mut ge = GilbertElliott::bursty(0.05, 20.0, 0.5);
        assert!((ge.mean_loss() - 0.05).abs() < 1e-9);
        let mut rng = Rng::new(11);
        let n = 200_000u32;
        let lost = ge.lose_of(n, &mut rng);
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.01, "empirical loss {rate}");
    }

    #[test]
    fn losses_are_bursty_not_bernoulli() {
        // P(loss | previous loss) must exceed the marginal loss rate.
        let mut ge = GilbertElliott::bursty(0.05, 25.0, 0.6);
        let mut rng = Rng::new(7);
        let (mut losses, mut after_loss, mut after_loss_losses) = (0u64, 0u64, 0u64);
        let mut prev_lost = false;
        let n = 300_000;
        for _ in 0..n {
            let lost = ge.step(&mut rng);
            if lost {
                losses += 1;
            }
            if prev_lost {
                after_loss += 1;
                if lost {
                    after_loss_losses += 1;
                }
            }
            prev_lost = lost;
        }
        let marginal = losses as f64 / n as f64;
        let conditional = after_loss_losses as f64 / after_loss.max(1) as f64;
        assert!(
            conditional > marginal * 3.0,
            "burstiness missing: P(loss|loss) {conditional:.3} vs marginal {marginal:.3}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let walk = |seed| {
            let mut ge = GilbertElliott::bursty(0.1, 10.0, 0.7);
            let mut rng = Rng::new(seed);
            (0..64).map(|_| ge.lose_of(100, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(walk(3), walk(3));
        assert_ne!(walk(3), walk(4));
    }

    #[test]
    fn clean_channel_loses_nothing() {
        let mut ge = GilbertElliott::new(0.0, 1.0, 0.0, 0.9);
        let mut rng = Rng::new(5);
        assert_eq!(ge.lose_of(10_000, &mut rng), 0);
        assert_eq!(ge.steady_state_bad(), 0.0);
    }

    #[test]
    fn bursty_parameterization_is_sane() {
        let ge = GilbertElliott::bursty(0.02, 15.0, 0.4);
        assert!(ge.p_gb > 0.0 && ge.p_gb < ge.p_bg);
        assert!((ge.steady_state_bad() - 0.05).abs() < 1e-9);
    }
}
