//! Plain-text table rendering for the figure reproductions.
//!
//! Every bench target prints one or more [`Table`]s: the same rows or
//! series the paper's figure reports, plus a `paper shape` note that
//! states what qualitative result the run is expected to reproduce.

use std::fmt::Write as _;

/// A rendered table: title, column headers, string rows.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Title line printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row should match `headers.len()`).
    pub rows: Vec<Vec<String>>,
    /// Qualitative expectation from the paper, printed under the table.
    pub paper_shape: String,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>) -> Self {
        Table { title: title.into(), ..Default::default() }
    }

    /// Set headers.
    pub fn headers<S: Into<String>>(mut self, headers: impl IntoIterator<Item = S>) -> Self {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Set the paper-shape note.
    pub fn paper_shape(mut self, shape: impl Into<String>) -> Self {
        self.paper_shape = shape.into();
        self
    }

    /// Append one row.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(c.len()))
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        if !self.headers.is_empty() {
            let _ = writeln!(out, "{}", line(&self.headers, &widths));
            let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
            let _ = writeln!(out, "{}", "-".repeat(total));
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        if !self.paper_shape.is_empty() {
            let _ = writeln!(out, "paper shape: {}", self.paper_shape);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Render as CSV (header row + data rows; commas in cells are
    /// replaced with semicolons — the tables never need quoting).
    pub fn to_csv(&self) -> String {
        let clean = |c: &str| c.replace(',', ";");
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| clean(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| clean(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// When `CLOUDFOG_CSV` is set, also write the table as
    /// `target/figures/<slug>.csv` so runs leave machine-readable
    /// artifacts behind. Errors are reported but non-fatal.
    pub fn maybe_write_csv(&self, slug: &str) {
        if std::env::var_os("CLOUDFOG_CSV").is_none() {
            return;
        }
        let dir = std::path::Path::new("target").join("figures");
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("csv: cannot create {dir:?}: {e}");
            return;
        }
        let path = dir.join(format!("{slug}.csv"));
        match std::fs::write(&path, self.to_csv()) {
            Ok(()) => println!("csv: wrote {}", path.display()),
            Err(e) => eprintln!("csv: cannot write {path:?}: {e}"),
        }
    }
}

/// Format a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format milliseconds with one decimal.
pub fn ms(x: f64) -> String {
    format!("{x:.1}ms")
}

/// Format Mbps with two decimals.
pub fn mbps(x: f64) -> String {
    format!("{x:.2}Mbps")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo").headers(["a", "long-header"]).paper_shape("x > y");
        t.row(["1", "2"]);
        t.row(["100", "20000"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("paper shape: x > y"));
        let lines: Vec<&str> = s.lines().collect();
        // Header and rows share the same width.
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new("x").headers(["a", "b"]);
        t.row(["1", "2,5"]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2;5\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(ms(81.25), "81.2ms");
        assert_eq!(mbps(1.5), "1.50Mbps");
    }
}
