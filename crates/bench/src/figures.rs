//! Data generation for every table and figure in the paper's §IV.
//!
//! Each function regenerates one figure's series using the same
//! modules the library exposes; the `harness = false` bench targets
//! print these through [`crate::report::Table`]. All sweeps fan the
//! independent (system × parameter) cells out across
//! `cloudfog-pool` worker threads — each cell is a self-contained
//! deterministic simulation, and results are placed back in cell
//! order, so the series are bit-identical for any worker count.
//!
//! Scale: by default runs use a reduced universe (set by
//! [`RunScale::from_env`]) so `cargo bench` finishes in minutes;
//! `CLOUDFOG_SCALE=1.0 CLOUDFOG_SECS=120` reproduces closer to paper
//! scale at proportional cost.

use cloudfog_core::config::{ExperimentProfile, SystemParams};
use cloudfog_core::systems::{
    coverage_curve, supernode_load_experiment, CoveragePoint, LoadExperimentConfig, LoadPoint,
    RunSummary, StreamingSim, StreamingSimConfig, SystemKind,
};
use cloudfog_pool::map_indexed;
use cloudfog_sim::time::SimDuration;

/// Scale knobs for a reproduction run.
#[derive(Clone, Copy, Debug)]
pub struct RunScale {
    /// Fraction of the paper's PeerSim universe (1.0 = 10 000 players).
    pub scale: f64,
    /// Simulated seconds per streaming run.
    pub secs: u64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for sweep fan-out (`CLOUDFOG_WORKERS` override;
    /// cell results are bit-identical for any value).
    pub workers: usize,
}

impl RunScale {
    /// Default: 6 % universe (600 players), 40 simulated seconds, one
    /// sweep worker per available core.
    pub fn default_small() -> Self {
        RunScale {
            scale: 0.06,
            secs: 40,
            seed: 20150701,
            workers: cloudfog_pool::default_workers(),
        }
    }

    /// A copy with an explicit sweep worker count (used by the 1-vs-N
    /// bit-identity tests and the throughput bench).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Read `CLOUDFOG_SCALE`, `CLOUDFOG_SECS`, `CLOUDFOG_SEED` from the
    /// environment, falling back to [`RunScale::default_small`].
    pub fn from_env() -> Self {
        let mut s = Self::default_small();
        s.scale = cloudfog_core::config::scale_from_env(s.scale);
        if let Ok(v) = std::env::var("CLOUDFOG_SECS") {
            if let Ok(n) = v.parse::<u64>() {
                s.secs = n.max(5);
            }
        }
        if let Ok(v) = std::env::var("CLOUDFOG_SEED") {
            if let Ok(n) = v.parse::<u64>() {
                s.seed = n;
            }
        }
        s
    }

    /// The PeerSim profile at this scale.
    pub fn peersim(&self) -> ExperimentProfile {
        ExperimentProfile::peersim(self.scale)
    }

    /// The PlanetLab profile (fixed size: 750 hosts).
    pub fn planetlab(&self) -> ExperimentProfile {
        ExperimentProfile::planetlab()
    }

    /// Supernode count scaled the way the profile scales.
    pub fn scaled(&self, full: usize) -> usize {
        ((full as f64 * self.scale).round() as usize).max(1)
    }
}

/// The latency requirements the paper sweeps in Figures 5 and 6.
pub const REQUIREMENTS_MS: [u32; 5] = [30, 50, 70, 90, 110];

/// One coverage series: a label plus its points.
#[derive(Clone, Debug)]
pub struct CoverageSeries {
    /// Series label (e.g. "5 datacenters").
    pub label: String,
    /// Points at each requirement.
    pub points: Vec<CoveragePoint>,
}

/// Figures 5(a)/6(a): coverage vs number of datacenters for each
/// latency requirement, pure cloud (no supernodes).
pub fn coverage_vs_datacenters(
    profile: &ExperimentProfile,
    datacenters: &[usize],
    seed: u64,
    workers: usize,
) -> Vec<CoverageSeries> {
    let params = SystemParams::default();
    map_indexed(workers, datacenters, |_, &k| CoverageSeries {
        label: format!("{k} datacenters"),
        points: coverage_curve(
            SystemKind::Cloud,
            profile,
            &REQUIREMENTS_MS,
            seed,
            Some(k),
            None,
            &params,
        ),
    })
}

/// Figures 5(b)/6(b): coverage vs number of supernodes (default
/// datacenter count) for each latency requirement.
pub fn coverage_vs_supernodes(
    profile: &ExperimentProfile,
    supernodes: &[usize],
    seed: u64,
    workers: usize,
) -> Vec<CoverageSeries> {
    let params = SystemParams::default();
    map_indexed(workers, supernodes, |_, &m| {
        let (kind, over) =
            if m == 0 { (SystemKind::Cloud, None) } else { (SystemKind::CloudFogB, Some(m)) };
        CoverageSeries {
            label: format!("{m} supernodes"),
            points: coverage_curve(kind, profile, &REQUIREMENTS_MS, seed, None, over, &params),
        }
    })
}

/// Run the streaming simulation for one (system, player-count) cell,
/// averaged over `CLOUDFOG_REPS` seeds (default 3) — the §IV
/// friend-majority game choice cascades populations toward one game,
/// so single-seed cells are noisy. Reps run sequentially: the sweep
/// above this call is what fans out, and nesting pools would
/// oversubscribe the machine.
pub fn streaming_cell(kind: SystemKind, players: usize, scale: &RunScale) -> RunSummary {
    let reps: u64 =
        std::env::var("CLOUDFOG_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(3).max(1);
    let runs: Vec<RunSummary> = (0..reps)
        .map(|r| {
            let cfg = StreamingSimConfig::builder(kind)
                .players(players)
                .seed(scale.seed ^ (r * 0x9E37))
                .ramp(SimDuration::from_secs((scale.secs / 4).max(5)))
                .horizon(SimDuration::from_secs(scale.secs))
                .build();
            StreamingSim::run(cfg)
        })
        .collect();
    average_runs(&runs)
}

/// Field-wise mean of several run summaries (same kind/player count).
pub fn average_runs(runs: &[RunSummary]) -> RunSummary {
    assert!(!runs.is_empty());
    let n = runs.len() as f64;
    let mean = |f: &dyn Fn(&RunSummary) -> f64| runs.iter().map(f).sum::<f64>() / n;
    RunSummary {
        kind: runs[0].kind,
        players: runs[0].players,
        fog_share: mean(&|r| r.fog_share),
        satisfied_ratio: mean(&|r| r.satisfied_ratio),
        mean_continuity: mean(&|r| r.mean_continuity),
        mean_latency_ms: mean(&|r| r.mean_latency_ms),
        coverage: mean(&|r| r.coverage),
        cloud_bytes: (runs.iter().map(|r| r.cloud_bytes).sum::<u64>() as f64 / n) as u64,
        cloud_mbps: mean(&|r| r.cloud_mbps),
        supernode_bytes: (runs.iter().map(|r| r.supernode_bytes).sum::<u64>() as f64 / n) as u64,
        edge_bytes: (runs.iter().map(|r| r.edge_bytes).sum::<u64>() as f64 / n) as u64,
        scheduler_drops: (runs.iter().map(|r| r.scheduler_drops).sum::<u64>() as f64 / n) as u64,
        failures_injected: runs.iter().map(|r| r.failures_injected).sum::<u64>()
            / runs.len() as u64,
        failovers_rescued: runs.iter().map(|r| r.failovers_rescued).sum::<u64>()
            / runs.len() as u64,
        faults_activated: runs.iter().map(|r| r.faults_activated).sum::<u64>() / runs.len() as u64,
        mean_detection_ms: mean(&|r| r.mean_detection_ms),
        orphaned_player_secs: mean(&|r| r.orphaned_player_secs),
        watchdog_reassignments: runs.iter().map(|r| r.watchdog_reassignments).sum::<u64>()
            / runs.len() as u64,
        events: runs.iter().map(|r| r.events).sum::<u64>() / runs.len() as u64,
        // Per-game rows don't average cleanly across seeds (different
        // game populations); drop them for averaged cells.
        game_breakdown: Vec::new(),
    }
}

/// Figure 7: cloud bandwidth vs number of players, for Cloud,
/// EdgeCloud and CloudFog/B.
pub fn bandwidth_vs_players(player_counts: &[usize], scale: &RunScale) -> Vec<RunSummary> {
    let systems = [SystemKind::Cloud, SystemKind::EdgeCloud, SystemKind::CloudFogB];
    let cells: Vec<(SystemKind, usize)> =
        systems.iter().flat_map(|&s| player_counts.iter().map(move |&n| (s, n))).collect();
    map_indexed(scale.workers, &cells, |_, &(kind, n)| streaming_cell(kind, n, scale))
}

/// Figure 8: average response latency per system at the default scale.
pub fn latency_by_system(players: usize, scale: &RunScale) -> Vec<RunSummary> {
    let systems =
        [SystemKind::Cloud, SystemKind::EdgeCloud, SystemKind::CloudFogB, SystemKind::CloudFogA];
    map_indexed(scale.workers, &systems, |_, &kind| streaming_cell(kind, players, scale))
}

/// Figure 9: playback continuity vs number of players, per system.
pub fn continuity_vs_players(player_counts: &[usize], scale: &RunScale) -> Vec<RunSummary> {
    let systems =
        [SystemKind::Cloud, SystemKind::EdgeCloud, SystemKind::CloudFogB, SystemKind::CloudFogA];
    let cells: Vec<(SystemKind, usize)> =
        systems.iter().flat_map(|&s| player_counts.iter().map(move |&n| (s, n))).collect();
    map_indexed(scale.workers, &cells, |_, &(kind, n)| streaming_cell(kind, n, scale))
}

/// The per-supernode loads the paper sweeps in Figures 10 and 11.
pub const LOADS: [usize; 6] = [5, 10, 15, 20, 25, 30];

/// Figures 10/11: satisfied players vs per-supernode load for a pair
/// of system variants (B vs adapt, or B vs schedule).
pub fn load_sweep(kinds: &[SystemKind], scale: &RunScale) -> Vec<(SystemKind, Vec<LoadPoint>)> {
    // Flatten (kind × load) into one cell list so the pool sees every
    // independent run at once, then regroup per kind.
    let cells: Vec<(SystemKind, usize)> =
        kinds.iter().flat_map(|&kind| LOADS.iter().map(move |&k| (kind, k))).collect();
    let points = map_indexed(scale.workers, &cells, |_, &(kind, k)| {
        supernode_load_experiment(LoadExperimentConfig {
            kind,
            groups: 8,
            players_per_sn: k,
            horizon: SimDuration::from_secs(scale.secs.min(30)),
            seed: scale.seed,
            ..Default::default()
        })
    });
    kinds
        .iter()
        .enumerate()
        .map(|(i, &kind)| (kind, points[i * LOADS.len()..(i + 1) * LOADS.len()].to_vec()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_runs_is_fieldwise_mean() {
        let scale = RunScale { scale: 0.02, secs: 8, seed: 3, workers: 1 };
        let run = |seed: u64| {
            let cfg = StreamingSimConfig::builder(SystemKind::Cloud)
                .players(100)
                .seed(seed)
                .horizon(SimDuration::from_secs(8))
                .build();
            StreamingSim::run(cfg)
        };
        let a = run(3);
        let b = run(4);
        let avg = average_runs(&[a.clone(), b.clone()]);
        assert_eq!(avg.kind, a.kind);
        assert!((avg.mean_latency_ms - (a.mean_latency_ms + b.mean_latency_ms) / 2.0).abs() < 1e-9);
        assert_eq!(avg.cloud_bytes, (a.cloud_bytes + b.cloud_bytes) / 2);
        let _ = scale;
    }

    #[test]
    fn env_scale_defaults() {
        let s = RunScale::default_small();
        assert!(s.scale > 0.0 && s.scale <= 1.0);
        assert!(s.secs >= 5);
        assert_eq!(s.scaled(600), 36);
    }

    #[test]
    fn coverage_sweep_smoke() {
        let scale = RunScale { scale: 0.02, secs: 10, seed: 1, workers: 2 };
        let series = coverage_vs_datacenters(&scale.peersim(), &[2, 10], 1, scale.workers);
        assert_eq!(series.len(), 2);
        for s in &series {
            assert_eq!(s.points.len(), REQUIREMENTS_MS.len());
        }
        // More datacenters ⇒ weakly better coverage at every req.
        for (a, b) in series[0].points.iter().zip(&series[1].points) {
            assert!(b.coverage >= a.coverage - 0.05, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn load_sweep_smoke() {
        let scale = RunScale { scale: 0.02, secs: 8, seed: 2, workers: 2 };
        let out = load_sweep(&[SystemKind::CloudFogB], &scale);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.len(), LOADS.len());
    }
}
