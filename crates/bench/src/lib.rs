//! # cloudfog-bench
//!
//! Reproduction harnesses for every table and figure in the CloudFog
//! paper's evaluation (§IV), plus criterion microbenchmarks of the
//! engine and the two QoE strategies.
//!
//! Run them all with `cargo bench` from the workspace root. Each
//! `benches/fig*.rs` target is `harness = false`: it prints the same
//! series the corresponding paper figure reports and states the
//! qualitative "paper shape" it reproduces. Scale with
//! `CLOUDFOG_SCALE` / `CLOUDFOG_SECS` / `CLOUDFOG_SEED`.
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `fig2_quality_table` | Fig. 2 quality-level table |
//! | `fig5a_coverage_datacenters_sim` | Fig. 5(a), PeerSim |
//! | `fig5b_coverage_supernodes_sim` | Fig. 5(b), PeerSim |
//! | `fig6a_coverage_datacenters_plab` | Fig. 6(a), PlanetLab |
//! | `fig6b_coverage_supernodes_plab` | Fig. 6(b), PlanetLab |
//! | `fig7_bandwidth` | Fig. 7(a/b) cloud bandwidth vs players |
//! | `fig8_response_latency` | Fig. 8(a/b) latency per system |
//! | `fig9_continuity` | Fig. 9(a/b) continuity vs players |
//! | `fig10_rate_adaptation` | Fig. 10(a/b) adapt vs B |
//! | `fig11_buffer_scheduling` | Fig. 11(a/b) schedule vs B |
//! | `econ_model` | §III-A economics (Eqs. 1–6) |
//! | `ablation_*` | design-choice ablations (DESIGN.md §4) |
//! | `micro` | criterion microbenchmarks |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod figures;
pub mod report;

pub use figures::{RunScale, LOADS, REQUIREMENTS_MS};
pub use report::{mbps, ms, pct, Table};
