//! 1-vs-N-worker bit-identity for the figure sweeps.
//!
//! Every sweep in `figures` fans its (system × parameter) cells out
//! through `cloudfog-pool` with index-keyed result placement, so the
//! series must be byte-identical for any worker count. Worker counts
//! are explicit (`RunScale::with_workers`) — no environment mutation.

use cloudfog_bench::figures::{self, RunScale};
use cloudfog_core::systems::SystemKind;

fn scale(workers: usize) -> RunScale {
    RunScale { scale: 0.02, secs: 10, seed: 42, workers }
}

#[test]
fn latency_sweep_is_bit_identical_across_worker_counts() {
    let one = figures::latency_by_system(120, &scale(1));
    for workers in [2, 4] {
        let many = figures::latency_by_system(120, &scale(workers));
        assert_eq!(
            format!("{one:?}"),
            format!("{many:?}"),
            "latency_by_system diverged at {workers} workers"
        );
    }
}

#[test]
fn load_sweep_is_bit_identical_across_worker_counts() {
    let kinds = [SystemKind::CloudFogB, SystemKind::CloudFogSchedule];
    let one = figures::load_sweep(&kinds, &scale(1));
    for workers in [3, 5] {
        let many = figures::load_sweep(&kinds, &scale(workers));
        assert_eq!(
            format!("{one:?}"),
            format!("{many:?}"),
            "load_sweep diverged at {workers} workers"
        );
    }
}
