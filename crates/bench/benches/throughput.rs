//! Throughput regression gate — the repo's committed perf baseline.
//!
//! Two measurements:
//!
//! 1. **Hot path**: events/sec for one 600-player CloudFog/A run
//!    (seed 7, 60 simulated seconds) — the workload the data-oriented
//!    refactor targets. Measured telemetry-off with wall-clock timing
//!    (best of three, to shed scheduler noise), plus the
//!    telemetry-derived [`events_per_sec`] of an instrumented run for
//!    cross-checking.
//! 2. **Sweep scaling**: wall time of the Figure-8 system sweep at 1
//!    worker vs `CLOUDFOG_SWEEP_WORKERS` (default 4) workers through
//!    `cloudfog-pool`. The recorded speedup is only meaningful when
//!    the machine actually has that many cores, so `cores` is recorded
//!    next to it.
//!
//! The run writes `target/telemetry/BENCH_throughput.json` (workspace
//! target dir, regardless of cwd). With `CLOUDFOG_ENFORCE_BASELINE=1`
//! the run fails if hot-path events/sec drops more than 25 % below the
//! committed baseline in `crates/bench/baseline/BENCH_throughput.json`
//! — CI runs it that way.
//!
//! [`events_per_sec`]: cloudfog_sim::telemetry::TelemetryReport::events_per_sec

use std::path::{Path, PathBuf};
use std::time::Instant;

use cloudfog_bench::{figures, RunScale, Table};
use cloudfog_core::systems::{StreamingSim, StreamingSimConfig, SystemKind};
use cloudfog_sim::telemetry::TelemetryConfig;
use cloudfog_sim::time::SimDuration;

/// Maximum tolerated drop below the committed baseline (fraction).
const REGRESSION_BUDGET: f64 = 0.25;

fn hot_path_config(telemetry: bool) -> StreamingSimConfig {
    let mut b = StreamingSimConfig::builder(SystemKind::CloudFogA)
        .players(600)
        .seed(7)
        .ramp(SimDuration::from_secs(10))
        .horizon(SimDuration::from_secs(60));
    if telemetry {
        b = b.telemetry(TelemetryConfig::default());
    }
    b.build()
}

/// Best-of-three telemetry-off hot-path throughput.
fn measure_hot_path() -> (u64, f64, f64) {
    let mut events = 0;
    let mut best_secs = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let summary = StreamingSim::run(hot_path_config(false));
        let secs = start.elapsed().as_secs_f64();
        events = summary.events;
        if secs < best_secs {
            best_secs = secs;
        }
    }
    (events, best_secs, events as f64 / best_secs)
}

/// Events/sec of an instrumented run, derived from telemetry phases.
fn measure_instrumented() -> f64 {
    let out = StreamingSim::run_instrumented(hot_path_config(true));
    out.telemetry
        .expect("telemetry enabled")
        .events_per_sec()
        .expect("events scalar and event_loop phase present")
}

/// Wall seconds of the Figure-8 sweep at a given pool worker count.
fn measure_sweep(workers: usize) -> f64 {
    let scale = RunScale { scale: 0.06, secs: 16, seed: 20150701, workers };
    let start = Instant::now();
    let runs = figures::latency_by_system(300, &scale);
    assert_eq!(runs.len(), 4, "sweep produced every system row");
    start.elapsed().as_secs_f64()
}

/// `<workspace>/target/telemetry`, independent of the bench's cwd.
fn telemetry_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("target").join("telemetry")
}

fn baseline_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("baseline").join("BENCH_throughput.json")
}

/// Pull the first `"events_per_sec":<number>` out of a baseline file —
/// the artifact is flat enough that a full JSON parser would be noise.
fn baseline_events_per_sec(text: &str) -> Option<f64> {
    let key = "\"events_per_sec\":";
    let at = text.find(key)? + key.len();
    let rest = &text[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let (events, wall_secs, events_per_sec) = measure_hot_path();
    let instrumented_eps = measure_instrumented();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let sweep_workers: usize = std::env::var("CLOUDFOG_SWEEP_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .max(2);
    let sweep_w1 = measure_sweep(1);
    let sweep_wn = measure_sweep(sweep_workers);
    let speedup = sweep_w1 / sweep_wn.max(1e-9);

    let mut t = Table::new("throughput gate (hot path + sweep scaling)")
        .headers(["measurement", "value"])
        .paper_shape("events/sec must not regress; sweep speedup tracks available cores");
    t.row(["hot-path events".into(), events.to_string()]);
    t.row(["hot-path wall (best of 3)".into(), format!("{wall_secs:.3}s")]);
    t.row(["hot-path events/sec".into(), format!("{events_per_sec:.0}")]);
    t.row(["instrumented events/sec".into(), format!("{instrumented_eps:.0}")]);
    t.row(["sweep wall @1 worker".into(), format!("{sweep_w1:.3}s")]);
    t.row([format!("sweep wall @{sweep_workers} workers"), format!("{sweep_wn:.3}s")]);
    t.row(["sweep speedup".into(), format!("{speedup:.2}x")]);
    t.row(["cores".into(), cores.to_string()]);
    t.print();
    if cores < sweep_workers {
        println!(
            "note: {cores} core(s) < {sweep_workers} workers — speedup ~1.0 is expected here; \
             run on a multi-core machine to see the scaling"
        );
    }

    let json = format!(
        "{{\"hot_path\":{{\"events\":{events},\"wall_secs\":{wall_secs:.6},\
         \"events_per_sec\":{events_per_sec:.1},\"instrumented_events_per_sec\":{instrumented_eps:.1}}},\
         \"sweep\":{{\"workers\":{sweep_workers},\"wall_secs_1\":{sweep_w1:.6},\
         \"wall_secs_n\":{sweep_wn:.6},\"speedup\":{speedup:.3},\"cores\":{cores}}}}}"
    );
    let dir = telemetry_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("throughput: cannot create {dir:?}: {e}");
    } else {
        let out = dir.join("BENCH_throughput.json");
        match std::fs::write(&out, &json) {
            Ok(()) => println!("wrote {}", out.display()),
            Err(e) => eprintln!("throughput: cannot write {out:?}: {e}"),
        }
    }

    let enforce = std::env::var("CLOUDFOG_ENFORCE_BASELINE").as_deref() == Ok("1");
    match std::fs::read_to_string(baseline_path()).ok().as_deref().and_then(baseline_events_per_sec)
    {
        Some(base) => {
            let floor = base * (1.0 - REGRESSION_BUDGET);
            println!(
                "baseline {base:.0} events/sec; floor {floor:.0}; measured {events_per_sec:.0}"
            );
            if events_per_sec < floor {
                eprintln!(
                    "THROUGHPUT REGRESSION: {events_per_sec:.0} events/sec is more than \
                     {:.0}% below the committed baseline {base:.0} ({cores} core(s) here)",
                    REGRESSION_BUDGET * 100.0
                );
                if enforce {
                    std::process::exit(1);
                }
                println!("(set CLOUDFOG_ENFORCE_BASELINE=1 to make this fatal)");
            }
        }
        None => {
            eprintln!("no committed baseline at {}", baseline_path().display());
            if enforce {
                std::process::exit(1);
            }
        }
    }
}
