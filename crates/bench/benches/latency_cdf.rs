//! Response-latency distribution per system — the Choy et al.
//! measurement view ("median latency of 80 ms or less to only 70 % of
//! users") that motivates the whole paper, regenerated on our
//! substrate: per-system P50/P75/P90/P99 of per-player response
//! latency.

use cloudfog_bench::{ms, RunScale, Table};
use cloudfog_core::systems::{StreamingSim, StreamingSimConfig, SystemKind};
use cloudfog_sim::stats::Histogram;
use cloudfog_sim::time::SimDuration;
use rayon::prelude::*;

fn main() {
    let scale = RunScale::from_env();
    let players = scale.peersim().population.players;
    let systems =
        [SystemKind::Cloud, SystemKind::EdgeCloud, SystemKind::CloudFogB, SystemKind::CloudFogA];
    let rows: Vec<(SystemKind, Histogram)> = systems
        .par_iter()
        .map(|&kind| {
            let mut cfg = StreamingSimConfig::quick(kind, players, scale.seed);
            cfg.ramp = SimDuration::from_secs((scale.secs / 4).max(5));
            cfg.horizon = SimDuration::from_secs(scale.secs);
            cfg.series_bucket = Some(SimDuration::from_secs(1));
            let (_, series) = StreamingSim::run_detailed(cfg);
            let mut hist = Histogram::new(0.0, 1_000.0, 200);
            if let Some(series) = series {
                for (_, mean, count) in series.latency_ms.rows() {
                    if count > 0 {
                        // Bucket means weighted by delivery count.
                        for _ in 0..count.min(10_000) {
                            hist.record(mean);
                        }
                    }
                }
            }
            (kind, hist)
        })
        .collect();

    let mut t = Table::new(format!("response-latency distribution ({players} players)"))
        .headers(["system", "P50", "P75", "P90", "P99"])
        .paper_shape("the Cloud tail is what Choy et al. measured; the fog compresses it");
    for (kind, hist) in &rows {
        let q = |p: f64| hist.quantile(p).map(ms).unwrap_or_else(|| "-".into());
        t.row([kind.label().to_string(), q(0.50), q(0.75), q(0.90), q(0.99)]);
    }
    t.print();
    t.maybe_write_csv("latency_cdf");
}
