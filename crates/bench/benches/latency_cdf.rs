//! Response-latency distribution per system — the Choy et al.
//! measurement view ("median latency of 80 ms or less to only 70 % of
//! users") that motivates the whole paper, regenerated on our
//! substrate: per-system P50/P95/P99 of per-player response latency,
//! straight from the telemetry histograms.

use cloudfog_bench::{ms, RunScale, Table};
use cloudfog_core::systems::{RunOutput, StreamingSim, StreamingSimConfig, SystemKind};
use cloudfog_sim::telemetry::TelemetryConfig;
use cloudfog_sim::time::SimDuration;

fn main() {
    let scale = RunScale::from_env();
    let players = scale.peersim().population.players;
    let systems =
        [SystemKind::Cloud, SystemKind::EdgeCloud, SystemKind::CloudFogB, SystemKind::CloudFogA];
    let rows: Vec<(SystemKind, RunOutput)> =
        cloudfog_pool::map_indexed(scale.workers, &systems, |_, &kind| {
            let cfg = StreamingSimConfig::builder(kind)
                .players(players)
                .seed(scale.seed)
                .ramp(SimDuration::from_secs((scale.secs / 4).max(5)))
                .horizon(SimDuration::from_secs(scale.secs))
                .telemetry(TelemetryConfig::default())
                .build();
            (kind, StreamingSim::run_instrumented(cfg))
        });

    let mut t = Table::new(format!("response-latency distribution ({players} players)"))
        .headers(["system", "P50", "P95", "P99", "max", "mean"])
        .paper_shape("the Cloud tail is what Choy et al. measured; the fog compresses it");
    for (kind, out) in &rows {
        let report = out.telemetry.as_ref().expect("telemetry enabled");
        let q = report.get_quantiles("latency_ms.player").expect("player latency quantiles");
        t.row([
            kind.label().to_string(),
            ms(q.quantiles.p50),
            ms(q.quantiles.p95),
            ms(q.quantiles.p99),
            ms(q.quantiles.max),
            ms(q.mean),
        ]);
    }
    t.print();
    t.maybe_write_csv("latency_cdf");
}
