//! §III-A economics (Eqs. 1–6): the incentive market.
//!
//! Sweeps the reward rate c_s over a synthetic contributor pool and
//! reports contributed supernodes, bandwidth, supported players and
//! provider savings — the quantitative backbone of the paper's
//! "lightweight alternative to building datacenters" argument.

use cloudfog_bench::{RunScale, Table};
use cloudfog_core::economics::{clear_market, optimal_reward, MarketParams, SupernodeOffer};
use cloudfog_sim::rng::Rng;

fn offers(n: usize, seed: u64) -> Vec<SupernodeOffer> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|_| SupernodeOffer {
            upload_capacity: 20.0 + rng.pareto(10.0, 1.5).min(200.0),
            utilization: rng.range_f64(0.5, 1.0),
            running_cost: rng.range_f64(2.0, 20.0),
            profit_threshold: rng.range_f64(0.0, 5.0),
        })
        .collect()
}

fn main() {
    let scale = RunScale::from_env();
    let pool = offers(1_000, scale.seed);
    let params = MarketParams {
        egress_value_per_mbps: 1.0,
        stream_rate: 1.2,
        update_rate: 0.1,
        player_demand: 10_000,
    };

    let mut t = Table::new("§III-A incentive market — sweep of reward rate c_s")
        .headers(["c_s", "contributed", "B_s (Mbps)", "supported n", "B_r- (Mbps)", "savings C_g"])
        .paper_shape(
            "a small reward recruits enough supernodes that savings peak at an interior c_s",
        );
    let rates: Vec<f64> = (1..=20).map(|i| i as f64 * 0.05).collect();
    for &r in &rates {
        let o = clear_market(r, &pool, &params);
        t.row([
            format!("{r:.2}"),
            o.contributed.len().to_string(),
            format!("{:.0}", o.contribution),
            o.supported_players.to_string(),
            format!("{:.0}", o.reduction),
            format!("{:.0}", o.provider_savings),
        ]);
    }
    t.print();

    let best = optimal_reward(&rates, &pool, &params);
    println!(
        "optimal c_s = {:.2}: {} supernodes, {} players supported, savings {:.0}",
        best.reward_per_mbps,
        best.contributed.len(),
        best.supported_players,
        best.provider_savings
    );
    assert!(best.provider_savings > 0.0, "market must be profitable at the optimum");
}
