//! Figure 6(b): user coverage vs number of supernodes (PlanetLab).
//!
//! 2 datacenters (Princeton, UCLA) fixed; supernodes swept 0 → 300.

use cloudfog_bench::{figures, pct, RunScale, Table};

fn main() {
    let scale = RunScale::from_env();
    let sweep = [0usize, 50, 100, 200, 300];
    let series =
        figures::coverage_vs_supernodes(&scale.planetlab(), &sweep, scale.seed, scale.workers);

    let mut t = Table::new("Figure 6(b) — coverage vs #supernodes (PlanetLab, 750 hosts, 2 DCs)")
        .headers(
            std::iter::once("requirement".to_string())
                .chain(series.iter().map(|s| s.label.clone())),
        )
        .paper_shape("deploying supernodes is an effective alternative to building datacenters");
    for (i, &req) in figures::REQUIREMENTS_MS.iter().enumerate() {
        t.row(
            std::iter::once(format!("{req} ms"))
                .chain(series.iter().map(|s| pct(s.points[i].coverage))),
        );
    }
    t.print();
    t.maybe_write_csv("fig6b");
}
