//! Figure 9: average playback continuity vs number of players.
//!
//! The paper: CloudFog/A > CloudFog/B > EdgeCloud > Cloud, with
//! CloudFog/A above 90 % on average.

use cloudfog_bench::{figures, pct, RunScale, Table};
use cloudfog_core::systems::SystemKind;

fn main() {
    let scale = RunScale::from_env();
    let base = scale.peersim().population.players;
    let counts: Vec<usize> =
        [0.5, 1.0].iter().map(|f| ((base as f64 * f) as usize).max(20)).collect();
    let runs = figures::continuity_vs_players(&counts, &scale);

    let mut t = Table::new("Figure 9 — playback continuity vs #players")
        .headers(["system", "players", "continuity", "satisfied"])
        .paper_shape("CloudFog/A > CloudFog/B > EdgeCloud > Cloud; CloudFog/A > 90%");
    for r in &runs {
        t.row([
            r.kind.label().to_string(),
            r.players.to_string(),
            pct(r.mean_continuity),
            pct(r.satisfied_ratio),
        ]);
    }
    t.print();
    t.maybe_write_csv("fig9");

    let at = |k: SystemKind| {
        runs.iter()
            .filter(|r| r.kind == k)
            .max_by_key(|r| r.players)
            .map(|r| r.mean_continuity)
            .unwrap()
    };
    let checks = [
        ("CloudFog/A >= CloudFog/B", at(SystemKind::CloudFogA) >= at(SystemKind::CloudFogB) - 0.02),
        ("CloudFog/B > EdgeCloud", at(SystemKind::CloudFogB) > at(SystemKind::EdgeCloud)),
        ("EdgeCloud > Cloud", at(SystemKind::EdgeCloud) > at(SystemKind::Cloud)),
        ("CloudFog/A > 0.9", at(SystemKind::CloudFogA) > 0.9),
    ];
    for (label, ok) in checks {
        println!("shape check: {label}: {}", if ok { "REPRODUCED" } else { "NOT REPRODUCED" });
    }
}
