//! Figure 7: server (cloud) bandwidth consumption vs number of players.
//!
//! The paper: Cloud > EdgeCloud > CloudFog/B at every population size,
//! with CloudFog/B's slope much smaller — the cloud only ships small
//! update feeds for fog-served players.

use cloudfog_bench::{figures, mbps, RunScale, Table};
use cloudfog_core::systems::SystemKind;

fn main() {
    let scale = RunScale::from_env();
    let base = scale.peersim().population.players;
    let counts: Vec<usize> =
        [0.25, 0.5, 0.75, 1.0].iter().map(|f| ((base as f64 * f) as usize).max(20)).collect();
    let runs = figures::bandwidth_vs_players(&counts, &scale);

    let mut t = Table::new("Figure 7 — cloud bandwidth vs #players")
        .headers(["system", "players", "cloud egress", "cloud GB", "supernode GB", "edge GB"])
        .paper_shape("Cloud > EdgeCloud > CloudFog/B; CloudFog/B grows slowest with players");
    for r in &runs {
        t.row([
            r.kind.label().to_string(),
            r.players.to_string(),
            mbps(r.cloud_mbps),
            format!("{:.3}", r.cloud_bytes as f64 / 1e9),
            format!("{:.3}", r.supernode_bytes as f64 / 1e9),
            format!("{:.3}", r.edge_bytes as f64 / 1e9),
        ]);
    }
    t.print();
    t.maybe_write_csv("fig7");

    // Shape check at the largest population.
    let at = |k: SystemKind| {
        runs.iter()
            .filter(|r| r.kind == k)
            .max_by_key(|r| r.players)
            .map(|r| r.cloud_bytes)
            .unwrap_or(0)
    };
    let (c, e, f) = (at(SystemKind::Cloud), at(SystemKind::EdgeCloud), at(SystemKind::CloudFogB));
    println!(
        "shape check: Cloud {c} > EdgeCloud {e} > CloudFog/B {f}: {}",
        if c > e && e > f { "REPRODUCED" } else { "NOT REPRODUCED" }
    );
}
