//! Ablation: binary-heap event queue vs calendar queue under the
//! CloudFog event mix (steady stream of near-future events).

use cloudfog_sim::calendar::{CalendarQueue, PendingSet};
use cloudfog_sim::event::EventQueue;
use cloudfog_sim::rng::Rng;
use cloudfog_sim::time::{SimDuration, SimTime};
use std::time::Instant;

fn drive<Q: PendingSet<u64>>(queue: &mut Q, ops: u64, seed: u64) -> u64 {
    let mut rng = Rng::new(seed);
    let mut now = SimTime::ZERO;
    let mut popped = 0u64;
    // Warm: 4k pending events, then push/pop churn like a streaming sim.
    for i in 0..4_000 {
        queue.insert(now + SimDuration::from_micros(rng.below(2_000_000)), i);
    }
    for i in 0..ops {
        let ev = queue.pop_earliest().expect("non-empty");
        now = ev.time;
        popped += 1;
        queue.insert(now + SimDuration::from_micros(rng.below(2_000_000)), i);
    }
    popped
}

fn main() {
    const OPS: u64 = 2_000_000;
    let t0 = Instant::now();
    let mut heap = EventQueue::new();
    let a = drive(&mut heap, OPS, 1);
    let heap_time = t0.elapsed();

    let t1 = Instant::now();
    let mut cal = CalendarQueue::new();
    let b = drive(&mut cal, OPS, 1);
    let cal_time = t1.elapsed();

    assert_eq!(a, b);
    println!("== ablation: pending-event set ==");
    println!(
        "binary heap : {OPS} hold ops in {heap_time:?} ({:.1} Mops/s)",
        OPS as f64 / heap_time.as_secs_f64() / 1e6
    );
    println!(
        "calendar    : {OPS} hold ops in {cal_time:?} ({:.1} Mops/s)",
        OPS as f64 / cal_time.as_secs_f64() / 1e6
    );
    println!(
        "verdict: {} is faster on this event mix",
        if cal_time < heap_time { "calendar queue" } else { "binary heap" }
    );
}
