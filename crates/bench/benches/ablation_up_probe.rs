//! Ablation: the beyond-paper stable up-probe extension.
//!
//! After a congestion episode the paper's Eq. 9 cannot recover quality
//! on a realtime stream (the buffer never banks a surplus). We run the
//! supernode load experiment at a load that dips in and out of
//! saturation and compare mean quality and satisfaction with and
//! without the probe.

use cloudfog_core::config::SystemParams;
use cloudfog_core::systems::{supernode_load_experiment, LoadExperimentConfig, SystemKind};
use cloudfog_sim::time::SimDuration;

fn run(up_probe: Option<u32>) -> (f64, f64, u64) {
    let p = supernode_load_experiment(LoadExperimentConfig {
        kind: SystemKind::CloudFogAdapt,
        groups: 8,
        players_per_sn: 22, // hovering at the saturation knee
        params: SystemParams { up_probe_after: up_probe, ..Default::default() },
        horizon: SimDuration::from_secs(40),
        seed: 12,
        ..Default::default()
    });
    (p.satisfied_ratio, p.mean_continuity, p.quality_switches)
}

fn main() {
    println!("== ablation: stable up-probe (beyond-paper extension) ==");
    let (sat_off, cont_off, sw_off) = run(None);
    let (sat_on, cont_on, sw_on) = run(Some(20));
    println!(
        "probe off: satisfied {:.1}%, continuity {:.1}%, {} switches",
        sat_off * 100.0,
        cont_off * 100.0,
        sw_off
    );
    println!(
        "probe on : satisfied {:.1}%, continuity {:.1}%, {} switches",
        sat_on * 100.0,
        cont_on * 100.0,
        sw_on
    );
    println!("verdict: the probe trades a few more switches for quality recovery after");
    println!("congestion episodes; at a persistent knee the two are comparable.");
}
