//! Figure 10: effectiveness of receiver-driven encoding rate
//! adaptation — satisfied players vs per-supernode load.
//!
//! The paper: CloudFog-adapt stays well above CloudFog/B as load
//! grows, with up to +27 % satisfied players at 25 players/supernode.

use cloudfog_bench::{figures, pct, RunScale, Table};
use cloudfog_core::systems::SystemKind;

fn main() {
    let scale = RunScale::from_env();
    let out = figures::load_sweep(&[SystemKind::CloudFogB, SystemKind::CloudFogAdapt], &scale);

    let mut t = Table::new("Figure 10 — satisfied players vs per-supernode load (adapt vs B)")
        .headers(["players/supernode", "CloudFog/B", "CloudFog-adapt", "gain"])
        .paper_shape("adapt ≥ B everywhere, biggest gain near saturation (~25 players)");
    let b = &out.iter().find(|(k, _)| *k == SystemKind::CloudFogB).unwrap().1;
    let a = &out.iter().find(|(k, _)| *k == SystemKind::CloudFogAdapt).unwrap().1;
    for (pb, pa) in b.iter().zip(a) {
        t.row([
            pb.players_per_sn.to_string(),
            pct(pb.satisfied_ratio),
            pct(pa.satisfied_ratio),
            format!("{:+.1}pp", (pa.satisfied_ratio - pb.satisfied_ratio) * 100.0),
        ]);
    }
    t.print();

    let max_gain = b
        .iter()
        .zip(a)
        .map(|(pb, pa)| pa.satisfied_ratio - pb.satisfied_ratio)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "shape check: adaptation helps under load (max gain {:+.1}pp, paper ~+27pp at 25): {}",
        max_gain * 100.0,
        if max_gain > 0.05 { "REPRODUCED" } else { "NOT REPRODUCED" }
    );
}
