//! Figure 5(b): user coverage vs number of supernodes (PeerSim).
//!
//! 5 datacenters fixed; supernodes swept 0 → 600 (scaled). The paper:
//! 100 supernodes lift coverage to 0.25–0.65 across requirements, and
//! ~200 supernodes match the coverage of deploying 25 datacenters.

use cloudfog_bench::{figures, pct, RunScale, Table};

fn main() {
    let scale = RunScale::from_env();
    let sweep: Vec<usize> = [0usize, 100, 200, 400, 600]
        .iter()
        .map(|&m| scale.scaled(m.max(1)) * usize::from(m > 0))
        .collect();
    let series =
        figures::coverage_vs_supernodes(&scale.peersim(), &sweep, scale.seed, scale.workers);

    let mut t = Table::new(format!(
        "Figure 5(b) — coverage vs #supernodes (PeerSim, {} players, 5 DCs)",
        scale.peersim().population.players
    ))
    .headers(
        std::iter::once("requirement".to_string()).chain(series.iter().map(|s| s.label.clone())),
    )
    .paper_shape(
        "supernodes lift coverage well beyond the bare cloud; a few hundred match 25 datacenters",
    );
    for (i, &req) in figures::REQUIREMENTS_MS.iter().enumerate() {
        t.row(
            std::iter::once(format!("{req} ms"))
                .chain(series.iter().map(|s| pct(s.points[i].coverage))),
        );
    }
    t.print();
    t.maybe_write_csv("fig5b");
}
