//! Live-plane overhead gate — what the tick-synchronous metrics
//! registry and SLO engine cost on top of an instrumented run.
//!
//! Two measurements on the same config (seed 7, 400 players, 45
//! simulated seconds, telemetry on):
//!
//! 1. **Plain**: `StreamingSim::run_instrumented` — the existing
//!    telemetry path, no live plane.
//! 2. **Live**: `StreamingSim::run_live` with the default
//!    [`LiveConfig`] (1 s tick, paper SLOs) into a [`NullSink`] — the
//!    event loop chopped at every tick boundary plus registry sampling
//!    and SLO evaluation, with exposition encoding priced out.
//!
//! Both are best-of-three wall clock; the gate is the ratio. Because
//! sampling is pull-based and read-only, the live run executes the
//! identical event stream — the bench asserts the summaries are equal
//! before trusting the timing.
//!
//! Writes `target/telemetry/BENCH_metrics_overhead.json`. With
//! `CLOUDFOG_ENFORCE_BASELINE=1` (how CI runs it) the run fails if the
//! ratio exceeds the absolute [`OVERHEAD_BUDGET`] or regresses more
//! than [`REGRESSION_BUDGET`] above the committed baseline in
//! `crates/bench/baseline/BENCH_metrics_overhead.json`.

use std::path::{Path, PathBuf};
use std::time::Instant;

use cloudfog_bench::Table;
use cloudfog_core::systems::{LiveConfig, StreamingSim, StreamingSimConfig, SystemKind};
use cloudfog_sim::live::NullSink;
use cloudfog_sim::telemetry::TelemetryConfig;
use cloudfog_sim::time::SimDuration;

/// Absolute ceiling on live-run wall time as a multiple of the plain
/// instrumented run. The live plane re-enters the event loop once per
/// simulated second and walks the active-session table per sample, so
/// some cost is structural — but past this the plane is no longer
/// "cheap enough to leave on".
const OVERHEAD_BUDGET: f64 = 1.5;

/// Maximum tolerated growth of the ratio above the committed baseline
/// (additive, in ratio points — baseline 1.10 allows up to 1.35).
const REGRESSION_BUDGET: f64 = 0.25;

fn cfg() -> StreamingSimConfig {
    StreamingSimConfig::builder(SystemKind::CloudFogA)
        .players(400)
        .seed(7)
        .ramp(SimDuration::from_secs(8))
        .horizon(SimDuration::from_secs(45))
        .telemetry(TelemetryConfig::default())
        .build()
}

/// Best-of-three wall seconds of the plain instrumented run.
fn measure_plain() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let out = StreamingSim::run_instrumented(cfg());
        best = best.min(start.elapsed().as_secs_f64());
        assert!(out.summary.events > 0);
    }
    best
}

/// Best-of-three wall seconds of the live run; also cross-checks that
/// sampling left the run untouched and reports samples taken.
fn measure_live() -> (f64, u64) {
    let live = LiveConfig::default();
    let plain = StreamingSim::run_instrumented(cfg());
    let mut best = f64::INFINITY;
    let mut samples = 0;
    for _ in 0..3 {
        let start = Instant::now();
        let (out, report) = StreamingSim::run_live(cfg(), &live, &mut NullSink);
        best = best.min(start.elapsed().as_secs_f64());
        assert_eq!(out.summary, plain.summary, "live sampling perturbed the run");
        samples = report.samples;
    }
    (best, samples)
}

/// `<workspace>/target/telemetry`, independent of the bench's cwd.
fn telemetry_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("target").join("telemetry")
}

fn baseline_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("baseline").join("BENCH_metrics_overhead.json")
}

/// Pull the first `"overhead_ratio":<number>` out of a baseline file.
fn baseline_ratio(text: &str) -> Option<f64> {
    let key = "\"overhead_ratio\":";
    let at = text.find(key)? + key.len();
    let rest = &text[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let plain_secs = measure_plain();
    let (live_secs, samples) = measure_live();
    let ratio = live_secs / plain_secs.max(1e-9);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let mut t = Table::new("live metrics plane overhead")
        .headers(["measurement", "value"])
        .paper_shape("live sampling must stay cheap enough to leave on in every experiment");
    t.row(["plain instrumented wall (best of 3)".into(), format!("{plain_secs:.3}s")]);
    t.row(["live wall (best of 3)".into(), format!("{live_secs:.3}s")]);
    t.row(["samples per live run".into(), samples.to_string()]);
    t.row(["overhead ratio".into(), format!("{ratio:.3}x")]);
    t.row(["absolute budget".into(), format!("{OVERHEAD_BUDGET:.2}x")]);
    t.row(["cores".into(), cores.to_string()]);
    t.print();

    let json = format!(
        "{{\"plain_wall_secs\":{plain_secs:.6},\"live_wall_secs\":{live_secs:.6},\
         \"samples\":{samples},\"overhead_ratio\":{ratio:.4},\"budget\":{OVERHEAD_BUDGET},\
         \"cores\":{cores}}}"
    );
    let dir = telemetry_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("metrics_overhead: cannot create {dir:?}: {e}");
    } else {
        let out = dir.join("BENCH_metrics_overhead.json");
        match std::fs::write(&out, &json) {
            Ok(()) => println!("wrote {}", out.display()),
            Err(e) => eprintln!("metrics_overhead: cannot write {out:?}: {e}"),
        }
    }

    let enforce = std::env::var("CLOUDFOG_ENFORCE_BASELINE").as_deref() == Ok("1");
    let mut failed = false;
    if ratio > OVERHEAD_BUDGET {
        eprintln!(
            "METRICS OVERHEAD OVER BUDGET: live run is {ratio:.3}x the plain run \
             (budget {OVERHEAD_BUDGET:.2}x, {cores} core(s))"
        );
        failed = true;
    }
    match std::fs::read_to_string(baseline_path()).ok().as_deref().and_then(baseline_ratio) {
        Some(base) => {
            let ceiling = base + REGRESSION_BUDGET;
            println!("baseline ratio {base:.3}x; ceiling {ceiling:.3}x; measured {ratio:.3}x");
            if ratio > ceiling {
                eprintln!(
                    "METRICS OVERHEAD REGRESSION: {ratio:.3}x is more than {REGRESSION_BUDGET} \
                     ratio points above the committed baseline {base:.3}x ({cores} core(s) here)"
                );
                failed = true;
            }
        }
        None => {
            eprintln!("no committed baseline at {}", baseline_path().display());
            failed = true;
        }
    }
    if failed {
        if enforce {
            std::process::exit(1);
        }
        println!("(set CLOUDFOG_ENFORCE_BASELINE=1 to make this fatal)");
    }
}
