//! Harness worker-pool scaling: the same scenario matrix on 1, 2, …
//! workers, with the merged-report fingerprint printed per row to show
//! the DST guarantee holding while wall time drops.
//!
//! On a single-core runner the speedup column flatlines at ~1× — the
//! fingerprint column is the point: identical across every pool size.

use cloudfog_bench::{RunScale, Table};
use cloudfog_core::systems::SystemKind;
use cloudfog_harness::prelude::*;
use cloudfog_sim::time::SimDuration;

fn main() {
    let scale = RunScale::from_env();
    let players = (scale.peersim().population.players / 4).max(60);
    let matrix = ScenarioMatrix::new()
        .systems(&SystemKind::ALL)
        .seeds(0..4)
        .players(&[players])
        .ramp(SimDuration::from_secs((scale.secs / 6).max(3)))
        .horizon(SimDuration::from_secs(scale.secs.max(12)))
        .template(FaultTemplate::Generated { salt: scale.seed, count: 2 });

    let mut t = Table::new("Harness scaling — same matrix, growing worker pool")
        .headers(["workers", "wall(s)", "speedup", "scenarios/s", "fingerprint"])
        .paper_shape("wall time shrinks with workers; merged fingerprint never changes");

    let cells = matrix.build().len() as f64;
    let mut base_wall = None;
    let pool_sizes: Vec<usize> =
        [1usize, 2, 4, available_workers()].into_iter().filter(|&w| w >= 1).collect();
    let mut seen = std::collections::BTreeSet::new();
    let mut fingerprints = std::collections::BTreeSet::new();
    for workers in pool_sizes {
        if !seen.insert(workers) {
            continue;
        }
        let started = std::time::Instant::now();
        let report = Harness::new(matrix.clone()).workers(workers).no_shrink().run();
        let wall = started.elapsed().as_secs_f64();
        let base = *base_wall.get_or_insert(wall);
        assert!(report.passed(), "{}", report.render());
        let fp = report.matrix.fingerprint();
        fingerprints.insert(fp);
        t.row([
            workers.to_string(),
            format!("{wall:.2}"),
            format!("{:.2}x", base / wall.max(1e-9)),
            format!("{:.1}", cells / wall.max(1e-9)),
            format!("{fp:016x}"),
        ]);
    }
    assert_eq!(fingerprints.len(), 1, "worker count changed the merged report: {fingerprints:?}");
    t.print();
}
