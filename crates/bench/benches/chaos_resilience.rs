//! Chaos resilience: every system under the same scripted fault
//! sequence plus background supernode churn.
//!
//! The paper argues fog systems must survive unreliable contributed
//! machines. Here each system replays one deterministic
//! [`FaultScript`] (outages, latency storms, loss bursts, bandwidth
//! collapses, gray failures) on top of MTBF churn; the heartbeat
//! detector and QoE watchdog do the recovering. The expected shape:
//! CloudFog variants lose some continuity but stay serviceable, Cloud
//! is immune to fog faults but pays its usual latency tax.

use cloudfog_bench::{pct, RunScale, Table};
use cloudfog_core::fault::{FaultScript, WatchdogParams};
use cloudfog_core::systems::{StreamingSim, StreamingSimConfig, SystemKind};
use cloudfog_sim::time::SimDuration;

fn main() {
    let scale = RunScale::from_env();
    let players = scale.peersim().population.players.max(100);
    let horizon = SimDuration::from_secs(scale.secs);
    let script = FaultScript::generate(scale.seed, horizon, 6);

    let mut t = Table::new("Chaos resilience — identical fault script, all systems")
        .headers([
            "system",
            "continuity",
            "satisfied",
            "faults",
            "detect(ms)",
            "orphan-s",
            "rescued",
            "watchdog",
        ])
        .paper_shape("fog systems degrade gracefully under faults; Cloud unaffected by fog loss");

    for kind in
        [SystemKind::Cloud, SystemKind::EdgeCloud, SystemKind::CloudFogA, SystemKind::CloudFogB]
    {
        let cfg = StreamingSimConfig::builder(kind)
            .players(players)
            .seed(scale.seed)
            .ramp(SimDuration::from_secs((scale.secs / 4).max(5)))
            .horizon(horizon)
            .supernode_mtbf(SimDuration::from_secs((scale.secs / 8).max(3)))
            .supernode_mttr(SimDuration::from_secs(5))
            .fault_script(script.clone())
            .watchdog(WatchdogParams::default())
            .build();
        let s = StreamingSim::run(cfg);
        t.row([
            kind.label().to_string(),
            pct(s.mean_continuity),
            pct(s.satisfied_ratio),
            s.faults_activated.to_string(),
            format!("{:.0}", s.mean_detection_ms),
            format!("{:.1}", s.orphaned_player_secs),
            s.failovers_rescued.to_string(),
            s.watchdog_reassignments.to_string(),
        ]);
    }
    t.print();
    t.maybe_write_csv("chaos_resilience");
}
