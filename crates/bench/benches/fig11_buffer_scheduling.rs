//! Figure 11: effectiveness of deadline-driven buffer scheduling —
//! satisfied players vs per-supernode load.
//!
//! The paper: CloudFog-schedule keeps more players satisfied than
//! CloudFog/B, especially when a supernode serves many players.

use cloudfog_bench::{figures, pct, RunScale, Table};
use cloudfog_core::systems::SystemKind;

fn main() {
    let scale = RunScale::from_env();
    let out = figures::load_sweep(&[SystemKind::CloudFogB, SystemKind::CloudFogSchedule], &scale);

    let mut t = Table::new("Figure 11 — satisfied players vs per-supernode load (schedule vs B)")
        .headers(["players/supernode", "CloudFog/B", "CloudFog-schedule", "gain", "drops"])
        .paper_shape("schedule ≥ B everywhere; gap widens as the supernode saturates");
    let b = &out.iter().find(|(k, _)| *k == SystemKind::CloudFogB).unwrap().1;
    let s = &out.iter().find(|(k, _)| *k == SystemKind::CloudFogSchedule).unwrap().1;
    for (pb, ps) in b.iter().zip(s) {
        t.row([
            pb.players_per_sn.to_string(),
            pct(pb.satisfied_ratio),
            pct(ps.satisfied_ratio),
            format!("{:+.1}pp", (ps.satisfied_ratio - pb.satisfied_ratio) * 100.0),
            ps.scheduler_drops.to_string(),
        ]);
    }
    t.print();

    let max_gain = b
        .iter()
        .zip(s)
        .map(|(pb, ps)| ps.satisfied_ratio - pb.satisfied_ratio)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "shape check: scheduling helps under load (max gain {:+.1}pp): {}",
        max_gain * 100.0,
        if max_gain > 0.02 { "REPRODUCED" } else { "NOT REPRODUCED" }
    );
}
