//! Shard-scaling regression gate — does sharding actually pay?
//!
//! One 8 000-player CloudFog/A run, measured two ways at equal
//! population:
//!
//! 1. **Monolithic** (`workers=1` in the issue's framing): a single
//!    `StreamingSim` world — one event queue holding every player.
//! 2. **Sharded curve**: the same run split into {2, 4, 8} sub-worlds
//!    by `ShardedSim` on a single lane, exchanging events at 5 s tick
//!    boundaries.
//!
//! Each point is best-of-three wall clock, events/sec computed from
//! that run's own executed-event count. On a single-core box the
//! sharded win is purely algorithmic — a shard's binary-heap event
//! queue is ~N× shallower than the monolith's and its slabs fit hotter
//! cache lines — so `cores` is recorded next to the curve to keep the
//! numbers honest (extra lanes add real parallelism on bigger boxes).
//!
//! Writes `target/telemetry/BENCH_shard_scaling.json`. The gate is
//! two-sided: the best sharded events/sec must (a) strictly beat the
//! monolithic baseline measured in the same process, and (b) not drop
//! more than 25 % below the committed baseline in
//! `crates/bench/baseline/BENCH_shard_scaling.json`. With
//! `CLOUDFOG_ENFORCE_BASELINE=1` both failures are fatal — CI's
//! scale-smoke job runs it that way.

use std::path::{Path, PathBuf};
use std::time::Instant;

use cloudfog_bench::Table;
use cloudfog_core::systems::{
    ShardedSim, ShardedSimConfig, StreamingSim, StreamingSimConfig, SystemKind,
};
use cloudfog_sim::time::SimDuration;

/// Maximum tolerated drop below the committed baseline (fraction).
const REGRESSION_BUDGET: f64 = 0.25;
/// Total population; `PLAYERS / capacity` sub-worlds per curve point.
const PLAYERS: usize = 8_000;
/// Per-shard capacities swept for the scaling curve.
const CAPACITIES: [usize; 3] = [4_000, 2_000, 1_000];
const SEED: u64 = 7;

fn monolithic_config() -> StreamingSimConfig {
    StreamingSimConfig::builder(SystemKind::CloudFogA)
        .players(PLAYERS)
        .seed(SEED)
        .ramp(SimDuration::from_secs(10))
        .horizon(SimDuration::from_secs(30))
        .build()
}

fn sharded_config(capacity: usize) -> ShardedSimConfig {
    ShardedSimConfig::builder(SystemKind::CloudFogA)
        .total_players(PLAYERS)
        .shard_capacity(capacity)
        .seed(SEED)
        .lanes(1)
        .ramp(SimDuration::from_secs(10))
        .horizon(SimDuration::from_secs(30))
        .tick(SimDuration::from_secs(5))
        .build()
}

/// One measured point: events, best wall seconds, events/sec.
struct Point {
    shards: usize,
    events: u64,
    wall_secs: f64,
    events_per_sec: f64,
}

fn best_of_3(shards: usize, mut run: impl FnMut() -> u64) -> Point {
    let mut events = 0;
    let mut best_secs = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        events = run();
        let secs = start.elapsed().as_secs_f64();
        if secs < best_secs {
            best_secs = secs;
        }
    }
    Point { shards, events, wall_secs: best_secs, events_per_sec: events as f64 / best_secs }
}

/// `<workspace>/target/telemetry`, independent of the bench's cwd.
fn telemetry_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("target").join("telemetry")
}

fn baseline_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("baseline").join("BENCH_shard_scaling.json")
}

/// Pull the first `"sharded_events_per_sec":<number>` out of a
/// baseline file — the artifact is flat enough that a full JSON parser
/// would be noise.
fn baseline_sharded_eps(text: &str) -> Option<f64> {
    let key = "\"sharded_events_per_sec\":";
    let at = text.find(key)? + key.len();
    let rest = &text[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mono = best_of_3(1, || StreamingSim::run(monolithic_config()).events);
    let curve: Vec<Point> = CAPACITIES
        .iter()
        .map(|&cap| {
            let cfg = sharded_config(cap);
            best_of_3(cfg.shard_count(), move || ShardedSim::run(&cfg).summary.events)
        })
        .collect();
    let best = curve
        .iter()
        .max_by(|a, b| a.events_per_sec.total_cmp(&b.events_per_sec))
        .expect("curve has points");
    let speedup = best.events_per_sec / mono.events_per_sec.max(1e-9);

    let mut t = Table::new("shard scaling gate (monolithic vs sharded, equal population)")
        .headers(["configuration", "events", "wall (best of 3)", "events/sec"])
        .paper_shape("sharded events/sec must strictly beat the monolithic baseline");
    t.row([
        format!("monolithic ({PLAYERS} players)"),
        mono.events.to_string(),
        format!("{:.3}s", mono.wall_secs),
        format!("{:.0}", mono.events_per_sec),
    ]);
    for p in &curve {
        t.row([
            format!("{} shards", p.shards),
            p.events.to_string(),
            format!("{:.3}s", p.wall_secs),
            format!("{:.0}", p.events_per_sec),
        ]);
    }
    t.row([
        "best sharded speedup".into(),
        String::new(),
        String::new(),
        format!("{speedup:.2}x @ {} shards", best.shards),
    ]);
    t.row(["cores".into(), String::new(), String::new(), cores.to_string()]);
    t.print();

    let curve_json: Vec<String> = curve
        .iter()
        .map(|p| {
            format!(
                "{{\"shards\":{},\"events\":{},\"wall_secs\":{:.6},\"events_per_sec\":{:.1}}}",
                p.shards, p.events, p.wall_secs, p.events_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\"players\":{PLAYERS},\"monolithic\":{{\"events\":{},\"wall_secs\":{:.6},\
         \"events_per_sec\":{:.1}}},\"curve\":[{}],\
         \"sharded_events_per_sec\":{:.1},\"speedup\":{speedup:.3},\"cores\":{cores}}}",
        mono.events,
        mono.wall_secs,
        mono.events_per_sec,
        curve_json.join(","),
        best.events_per_sec,
    );
    let dir = telemetry_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("shard_scaling: cannot create {dir:?}: {e}");
    } else {
        let out = dir.join("BENCH_shard_scaling.json");
        match std::fs::write(&out, &json) {
            Ok(()) => println!("wrote {}", out.display()),
            Err(e) => eprintln!("shard_scaling: cannot write {out:?}: {e}"),
        }
    }

    let enforce = std::env::var("CLOUDFOG_ENFORCE_BASELINE").as_deref() == Ok("1");
    if best.events_per_sec <= mono.events_per_sec {
        eprintln!(
            "SHARDING DOES NOT PAY: best sharded {:.0} events/sec <= monolithic {:.0}",
            best.events_per_sec, mono.events_per_sec
        );
        if enforce {
            std::process::exit(1);
        }
        println!("(set CLOUDFOG_ENFORCE_BASELINE=1 to make this fatal)");
    }
    match std::fs::read_to_string(baseline_path()).ok().as_deref().and_then(baseline_sharded_eps) {
        Some(base) => {
            let floor = base * (1.0 - REGRESSION_BUDGET);
            println!(
                "baseline {base:.0} sharded events/sec; floor {floor:.0}; measured {:.0}",
                best.events_per_sec
            );
            if best.events_per_sec < floor {
                eprintln!(
                    "SHARD THROUGHPUT REGRESSION: {:.0} events/sec is more than {:.0}% below \
                     the committed baseline {base:.0}",
                    best.events_per_sec,
                    REGRESSION_BUDGET * 100.0
                );
                if enforce {
                    std::process::exit(1);
                }
                println!("(set CLOUDFOG_ENFORCE_BASELINE=1 to make this fatal)");
            }
        }
        None => {
            eprintln!("no committed baseline at {}", baseline_path().display());
            if enforce {
                std::process::exit(1);
            }
        }
    }
}
