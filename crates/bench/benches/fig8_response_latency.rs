//! Figure 8: average response latency per system.
//!
//! The paper: Cloud > EdgeCloud > CloudFog/B > CloudFog/A.

use cloudfog_bench::{figures, ms, pct, RunScale, Table};
use cloudfog_core::systems::SystemKind;

fn main() {
    let scale = RunScale::from_env();
    let players = scale.peersim().population.players;
    let runs = figures::latency_by_system(players, &scale);

    let mut t = Table::new(format!("Figure 8 — average response latency ({players} players)"))
        .headers(["system", "mean latency", "coverage", "fog share"])
        .paper_shape("Cloud > EdgeCloud > CloudFog/B > CloudFog/A");
    for r in &runs {
        t.row([
            r.kind.label().to_string(),
            ms(r.mean_latency_ms),
            pct(r.coverage),
            pct(r.fog_share),
        ]);
    }
    t.print();
    t.maybe_write_csv("fig8");

    let at = |k: SystemKind| runs.iter().find(|r| r.kind == k).map(|r| r.mean_latency_ms).unwrap();
    let order = [
        ("Cloud > EdgeCloud", at(SystemKind::Cloud) > at(SystemKind::EdgeCloud)),
        ("EdgeCloud > CloudFog/B", at(SystemKind::EdgeCloud) > at(SystemKind::CloudFogB)),
        ("CloudFog/B >= CloudFog/A", at(SystemKind::CloudFogB) >= at(SystemKind::CloudFogA)),
    ];
    for (label, ok) in order {
        println!("shape check: {label}: {}", if ok { "REPRODUCED" } else { "NOT REPRODUCED" });
    }
}
