//! Ablation: the §III-B consecutive-estimation hysteresis window.
//!
//! With window = 1 the rate controller reacts to every sample and
//! oscillates; the paper's "calculate r a number of times
//! consecutively" suppresses that. We count quality switches under a
//! noisy-but-stable link.

use cloudfog_core::adapt::{RateController, RateDecision};
use cloudfog_sim::rng::Rng;
use cloudfog_sim::time::{SimDuration, SimTime};
use cloudfog_workload::games::GAMES;

fn switches(window: u32, seed: u64) -> u32 {
    let mut c = RateController::new(&GAMES[1], 0.5, window);
    let mut rng = Rng::new(seed);
    let tau = SimDuration::from_millis(200);
    let mut n = 0;
    for k in 0..2_000 {
        // Noisy download rate around parity: no real trend.
        let d = 1.0 + rng.normal(0.0, 0.8);
        let t = SimTime::from_millis(200 * k as u64);
        match c.observe_explained(t, d.max(0.0), 1.0, tau).0 {
            RateDecision::Hold => {}
            _ => n += 1,
        }
    }
    n
}

fn main() {
    println!("== ablation: rate-adaptation hysteresis window h ==");
    for window in [1u32, 2, 3, 5, 8] {
        let s: u32 = (0..8).map(|seed| switches(window, seed)).sum();
        println!("window {window}: {s} quality switches over 8 noisy runs");
    }
    let no_hyst: u32 = (0..8).map(|s| switches(1, s)).sum();
    let hyst: u32 = (0..8).map(|s| switches(3, s)).sum();
    println!(
        "verdict: window 3 cuts switches {}x vs window 1 ({} -> {})",
        if hyst > 0 { no_hyst / hyst.max(1) } else { 0 },
        no_hyst,
        hyst
    );
    assert!(hyst < no_hyst, "hysteresis must reduce oscillation");
}
