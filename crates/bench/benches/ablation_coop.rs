//! Ablation: §V supernode cooperation (cooperative offloading).
//!
//! An overload hotspot — a few supernodes in one metro, one of them
//! carrying most of the players — with and without the cooperation
//! planner. Reports the worst load factor before/after and the number
//! of migrations.

use cloudfog_core::coop::{apply_migrations, load_factor, plan_rebalance, CoopPolicy};
use cloudfog_core::infra::{SupernodeId, SupernodeTable};
use cloudfog_net::bandwidth::Mbps;
use cloudfog_net::latency::LatencyModel;
use cloudfog_net::topology::{HostId, HostKind, LinkProfile, Topology};
use cloudfog_sim::rng::Rng;
use cloudfog_workload::player::PlayerId;

fn main() {
    let mut rng = Rng::new(42);
    let mut topo = Topology::new(LatencyModel::peersim(42));
    let links = LinkProfile {
        upload_median: Mbps(25.0),
        upload_sigma: 0.0,
        download_median: Mbps(100.0),
        download_sigma: 0.0,
    };
    // Five supernodes in one metro.
    let mut table = SupernodeTable::new();
    for _ in 0..5 {
        let h = topo.add_host_in_city(HostKind::SupernodeCandidate, &links, 0, &mut rng);
        table.register(h, 20);
    }
    // 30 players, all initially piled on supernode 0 (e.g. it joined
    // first and soaked up the early arrivals).
    let mut hosts = Vec::new();
    for p in 0..30u32 {
        let h = topo.add_host_in_city(HostKind::Player, &LinkProfile::residential(), 0, &mut rng);
        hosts.push(h);
        let target = if p < 20 { 0 } else { 1 + (p % 4) };
        table.assign(SupernodeId(target), PlayerId(p));
    }

    let demand = |p: PlayerId| if p.0.is_multiple_of(3) { 1.8 } else { 1.0 };
    let player_host = |p: PlayerId| hosts[p.0 as usize];
    let uplink_of = |h: HostId| topo.host(h).upload;

    let worst = |table: &SupernodeTable| -> f64 {
        (0..table.len())
            .map(|i| load_factor(table, SupernodeId(i as u32), &uplink_of, &demand))
            .fold(0.0, f64::max)
    };

    println!("== ablation: §V supernode cooperation ==");
    println!("before: worst load factor {:.2}", worst(&table));

    let policy = CoopPolicy::default();
    let plan = plan_rebalance(&table, &topo, &player_host, &demand, &policy);
    let applied = apply_migrations(&mut table, &plan);
    println!("plan: {} migrations ({} applied)", plan.len(), applied);
    println!("after : worst load factor {:.2}", worst(&table));
    let loads: Vec<String> = (0..table.len())
        .map(|i| format!("{:.2}", load_factor(&table, SupernodeId(i as u32), &uplink_of, &demand)))
        .collect();
    println!("per-supernode load factors: [{}]", loads.join(", "));
    println!("verdict: cooperation spreads hotspot load across nearby peers");
    assert!(worst(&table) <= policy.overload_factor + 1e-9, "hotspot must be relieved");
}
