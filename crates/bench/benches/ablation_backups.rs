//! Ablation: backup supernodes (h₂) on supernode churn.
//!
//! §III-A.3 records up to h₂ backups so that a player whose supernode
//! retires can fail over without re-running the full join protocol.
//! We retire a fraction of supernodes and count how many displaced
//! players a backup rescues vs falling back to the cloud.

use cloudfog_core::config::{ExperimentProfile, SystemParams};
use cloudfog_core::infra::{assign_player, failover};
use cloudfog_core::systems::{Deployment, SystemKind};
use cloudfog_sim::rng::Rng;
use cloudfog_workload::games::GAMES;
use cloudfog_workload::player::PlayerId;

fn main() {
    let profile = ExperimentProfile::peersim(0.06);
    let mut deployment = Deployment::build(SystemKind::CloudFogB, &profile, 99, None, None);
    let mut rng = Rng::new(7);

    for (label, backup_limit) in [("h2 = 0 (no backups)", 0usize), ("h2 = 10 (paper)", 10)] {
        let params = SystemParams { backup_limit, ..Default::default() };
        let mut assigned = Vec::new();
        // Assign only a third of the population so the fog keeps
        // capacity headroom — failover needs somewhere to land.
        for p in 0..deployment.population.len() / 3 {
            let pid = PlayerId(p as u32);
            let game = &GAMES[p % 5];
            let host = deployment.population.host_of(pid);
            let a = assign_player(
                deployment.topology(),
                &deployment.supernodes,
                host,
                game,
                &params,
                &mut rng,
            );
            if let Some(sn) = a.primary {
                deployment.supernodes.assign(sn, pid);
                assigned.push((pid, sn, a.backups, game));
            }
        }
        // Retire 30 % of supernodes.
        let total_sn = deployment.supernodes.len();
        let mut retired = Vec::new();
        for i in 0..total_sn {
            if i % 3 == 0 {
                retired.push(cloudfog_core::infra::SupernodeId(i as u32));
            }
        }
        let mut displaced = 0u32;
        let mut rescued = 0u32;
        for &sn in &retired {
            deployment.supernodes.retire(sn);
        }
        for (pid, sn, backups, game) in &assigned {
            if retired.contains(sn) {
                displaced += 1;
                let host = deployment.population.host_of(*pid);
                if failover(
                    deployment.topology(),
                    &deployment.supernodes,
                    host,
                    game,
                    &params,
                    backups,
                    &mut rng,
                )
                .is_some()
                {
                    rescued += 1;
                }
            }
        }
        println!(
            "{label}: {displaced} displaced, {rescued} rescued by backups ({:.0}%)",
            100.0 * rescued as f64 / displaced.max(1) as f64
        );
        // Reset for the next configuration.
        deployment = Deployment::build(SystemKind::CloudFogB, &profile, 99, None, None);
    }
    println!("verdict: backups turn supernode churn into local failover instead of cloud fallback");
}
