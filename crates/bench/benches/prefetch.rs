//! Prefetch-plane regression gate — the committed proof that
//! prediction pays for itself and stays cheap.
//!
//! Two measurements:
//!
//! 1. **Flash crowd**: the judge scenario from
//!    `examples/prefetch.rs` (400 players, seed 77, 60/s spike at
//!    t=30s for 20s, two regional outages) run prediction-off and
//!    prediction-on. Scored on the latency excursion the crowd carves
//!    — the QoE dip depth and the recovery time — plus the cache hit
//!    rate on the on side.
//! 2. **Steady state**: the `BENCH_throughput` hot-path workload
//!    (600 players, seed 7, 60 simulated seconds, no churn) measured
//!    prediction-off and prediction-on on this machine, best of three
//!    each. The on/off wall ratio prices what the plane costs when
//!    nothing is burning; it must stay within [`STEADY_BUDGET`].
//!
//! Writes `target/telemetry/BENCH_prefetch.json`. With
//! `CLOUDFOG_ENFORCE_BASELINE=1` (how CI runs it) the run fails if
//! the on-side dip depth is not below the off-side one, the hit rate
//! falls below the committed floor, the dip depth regresses above the
//! committed ceiling, or the steady-state ratio blows the budget.

use std::path::{Path, PathBuf};
use std::time::Instant;

use cloudfog_bench::Table;
use cloudfog_core::fault::{FaultScript, WatchdogParams};
use cloudfog_core::systems::simulation::QoeSeries;
use cloudfog_core::systems::{
    ChurnConfig, JoinPattern, PrefetchConfig, StreamingSim, StreamingSimConfig, SystemKind,
};
use cloudfog_sim::series::SpikeReport;
use cloudfog_sim::time::{SimDuration, SimTime};

/// Steady-state wall-clock with prediction on may be at most this
/// multiple of prediction off (the acceptance budget: within 10 %).
const STEADY_BUDGET: f64 = 1.10;

/// Regression headroom over the committed on-side dip depth (ms).
const DIP_REGRESSION_MS: f64 = 5.0;

/// Tolerated drop below the committed hit-rate baseline (absolute).
const HIT_RATE_REGRESSION: f64 = 0.15;

const SPIKE_AT: SimDuration = SimDuration::from_secs(30);
const HORIZON: SimDuration = SimDuration::from_secs(90);
const TOLERANCE_MS: f64 = 7.5;

fn flash_config(prefetch: Option<PrefetchConfig>) -> StreamingSimConfig {
    let mut b = StreamingSimConfig::builder(SystemKind::CloudFogA)
        .players(400)
        .seed(77)
        .ramp(SimDuration::from_secs(10))
        .horizon(HORIZON)
        .join_pattern(JoinPattern::FlashCrowd {
            base_rate: 3.0,
            spike_at: SPIKE_AT,
            spike_rate: 60.0,
            spike_duration: SimDuration::from_secs(20),
        })
        .churn(ChurnConfig {
            supernode_arrival_rate: 0.1,
            supernode_retire_rate: 0.05,
            rebalance_interval: Some(SimDuration::from_secs(5)),
            ..ChurnConfig::default()
        })
        .fault_script(FaultScript::generate_outages(77, HORIZON, 2))
        .watchdog(WatchdogParams::default())
        .series_bucket(SimDuration::from_secs(5));
    if let Some(p) = prefetch {
        b = b.prefetch(p);
    }
    b.build()
}

/// Latency excursion of the flash-crowd run, plus the hit rate when
/// prediction is on.
fn measure_flash(prefetch: Option<PrefetchConfig>) -> (SpikeReport, f64) {
    let out = StreamingSim::run_instrumented(flash_config(prefetch));
    let series: QoeSeries = out.series.expect("series recording enabled");
    let spike = series.latency_ms.spike_report(SimTime::ZERO + SPIKE_AT, TOLERANCE_MS);
    let hit_rate = out.prefetch.map(|p| p.hit_rate()).unwrap_or(0.0);
    (spike, hit_rate)
}

fn steady_config(prefetch: Option<PrefetchConfig>) -> StreamingSimConfig {
    let mut b = StreamingSimConfig::builder(SystemKind::CloudFogA)
        .players(600)
        .seed(7)
        .ramp(SimDuration::from_secs(10))
        .horizon(SimDuration::from_secs(60));
    if let Some(p) = prefetch {
        b = b.prefetch(p);
    }
    b.build()
}

/// Best-of-three wall seconds of the steady-state hot path.
fn measure_steady(prefetch: Option<PrefetchConfig>) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let summary = StreamingSim::run(steady_config(prefetch));
        best = best.min(start.elapsed().as_secs_f64());
        assert!(summary.events > 0);
    }
    best
}

/// `<workspace>/target/telemetry`, independent of the bench's cwd.
fn telemetry_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("target").join("telemetry")
}

fn baseline_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("baseline").join("BENCH_prefetch.json")
}

/// Pull `"<key>":<number>` out of the flat baseline artifact.
fn baseline_value(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = &text[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let (off, _) = measure_flash(None);
    let (on, hit_rate) = measure_flash(Some(PrefetchConfig::default()));
    let steady_off = measure_steady(None);
    let steady_on = measure_steady(Some(PrefetchConfig::default()));
    let steady_ratio = steady_on / steady_off.max(1e-9);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let horizon_secs = HORIZON.as_secs_f64();
    let (rec_off, rec_on) = (off.recovery_secs_or(horizon_secs), on.recovery_secs_or(horizon_secs));

    let mut t = Table::new("prefetch gate (flash-crowd QoE dip + steady-state cost)")
        .headers(["measurement", "off", "on"])
        .paper_shape("prediction must shrink the dip and recover faster at near-zero steady cost");
    t.row([
        "QoE dip depth (ms)".into(),
        format!("{:.2}", off.spike_height),
        format!("{:.2}", on.spike_height),
    ]);
    t.row(["recovery (s)".into(), format!("{rec_off:.0}"), format!("{rec_on:.0}")]);
    t.row(["cache hit rate".into(), "-".into(), format!("{hit_rate:.3}")]);
    t.row([
        "steady wall (best of 3)".into(),
        format!("{steady_off:.3}s"),
        format!("{steady_on:.3}s"),
    ]);
    t.row(["steady on/off ratio".into(), "-".into(), format!("{steady_ratio:.3}x")]);
    t.row(["cores".into(), "-".into(), cores.to_string()]);
    t.print();

    let json = format!(
        "{{\"flash\":{{\"dip_ms_off\":{:.3},\"dip_ms_on\":{:.3},\
         \"recovery_s_off\":{rec_off:.1},\"recovery_s_on\":{rec_on:.1},\
         \"hit_rate\":{hit_rate:.4}}},\
         \"steady\":{{\"wall_secs_off\":{steady_off:.6},\"wall_secs_on\":{steady_on:.6},\
         \"ratio\":{steady_ratio:.4},\"budget\":{STEADY_BUDGET}}},\"cores\":{cores}}}",
        off.spike_height, on.spike_height
    );
    let dir = telemetry_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("prefetch: cannot create {dir:?}: {e}");
    } else {
        let out = dir.join("BENCH_prefetch.json");
        match std::fs::write(&out, &json) {
            Ok(()) => println!("wrote {}", out.display()),
            Err(e) => eprintln!("prefetch: cannot write {out:?}: {e}"),
        }
    }

    let enforce = std::env::var("CLOUDFOG_ENFORCE_BASELINE").as_deref() == Ok("1");
    let mut failed = false;
    if on.spike_height >= off.spike_height {
        eprintln!(
            "PREFETCH GATE: prediction-on dip {:.2} ms is not below prediction-off {:.2} ms \
             ({cores} core(s))",
            on.spike_height, off.spike_height
        );
        failed = true;
    }
    if rec_on > rec_off {
        eprintln!("PREFETCH GATE: prediction-on recovery {rec_on:.0}s exceeds off {rec_off:.0}s");
        failed = true;
    }
    if steady_ratio > STEADY_BUDGET {
        eprintln!(
            "PREFETCH STEADY-STATE OVER BUDGET: on/off wall ratio {steady_ratio:.3}x exceeds \
             {STEADY_BUDGET:.2}x ({cores} core(s))"
        );
        failed = true;
    }
    match std::fs::read_to_string(baseline_path()).ok() {
        Some(text) => {
            if let Some(base_hit) = baseline_value(&text, "hit_rate") {
                let floor = (base_hit - HIT_RATE_REGRESSION).max(0.0);
                println!(
                    "baseline hit rate {base_hit:.3}; floor {floor:.3}; measured {hit_rate:.3}"
                );
                if hit_rate < floor {
                    eprintln!(
                        "PREFETCH HIT-RATE REGRESSION: {hit_rate:.3} below floor {floor:.3} \
                         (committed {base_hit:.3})"
                    );
                    failed = true;
                }
            }
            if let Some(base_dip) = baseline_value(&text, "dip_ms_on") {
                let ceiling = base_dip + DIP_REGRESSION_MS;
                println!(
                    "baseline on-dip {base_dip:.2} ms; ceiling {ceiling:.2}; measured {:.2}",
                    on.spike_height
                );
                if on.spike_height > ceiling {
                    eprintln!(
                        "PREFETCH DIP REGRESSION: {:.2} ms is more than {DIP_REGRESSION_MS} ms \
                         above the committed baseline {base_dip:.2}",
                        on.spike_height
                    );
                    failed = true;
                }
            }
        }
        None => {
            eprintln!("no committed baseline at {}", baseline_path().display());
            failed = true;
        }
    }
    if failed {
        if enforce {
            std::process::exit(1);
        }
        println!("(set CLOUDFOG_ENFORCE_BASELINE=1 to make this fatal)");
    }
}
