//! Per-genre QoE breakdown — the paper's motivating observation that
//! "different games have different tolerance on packet loss rate and
//! response delay", measured end to end.
//!
//! Also explains the Fig. 9 absolute-value note in EXPERIMENTS.md:
//! the macro-average continuity is dragged by the tightest-budget
//! games, which no infrastructure can satisfy once per-leg access
//! latency exceeds their requirement.

use cloudfog_bench::{ms, pct, RunScale, Table};
use cloudfog_core::systems::{StreamingSim, StreamingSimConfig, SystemKind};
use cloudfog_sim::time::SimDuration;
use cloudfog_workload::games::GAMES;

fn main() {
    let scale = RunScale::from_env();
    for kind in [SystemKind::Cloud, SystemKind::CloudFogA] {
        let cfg = StreamingSimConfig::builder(kind)
            .players(scale.peersim().population.players)
            .seed(scale.seed)
            .ramp(SimDuration::from_secs((scale.secs / 4).max(5)))
            .horizon(SimDuration::from_secs(scale.secs))
            .build();
        let s = StreamingSim::run(cfg);

        let mut t = Table::new(format!("per-genre QoE — {}", kind.label()))
            .headers(["game", "budget", "players", "continuity", "satisfied", "latency"])
            .paper_shape("lax-budget games enjoy high QoE; the 30 ms game is the hard one");
        for row in &s.game_breakdown {
            let game = GAMES[row.game.index()];
            t.row([
                game.name.to_string(),
                format!("{} ms", game.latency_requirement_ms),
                row.players.to_string(),
                pct(row.continuity),
                pct(row.satisfied),
                ms(row.latency_ms),
            ]);
        }
        t.print();
    }
}
