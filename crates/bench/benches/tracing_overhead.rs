//! Overhead of the causal-tracing layer: the same streaming run with
//! telemetry off (the zero-cost default), with telemetry + causal
//! tracing on, and the pure per-call cost of the causal log's hot
//! path (begin → stamps → finish).
//!
//! The first two bars are the gate: tracing is copy-only, so the
//! instrumented run should stay within a small constant factor of the
//! plain run — a regression here means someone put work on the
//! untraced path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cloudfog_core::systems::{StreamingSim, StreamingSimConfig, SystemKind};
use cloudfog_sim::causal::{CausalLog, Outcome, Stage};
use cloudfog_sim::telemetry::TelemetryConfig;
use cloudfog_sim::time::{SimDuration, SimTime};

fn run_cfg(telemetry: bool) -> StreamingSimConfig {
    let mut builder = StreamingSimConfig::builder(SystemKind::CloudFogA)
        .players(80)
        .seed(11)
        .ramp(SimDuration::from_secs(3))
        .horizon(SimDuration::from_secs(12));
    if telemetry {
        builder = builder.telemetry(TelemetryConfig::default());
    }
    builder.build()
}

fn bench_run_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracing_overhead");
    group.sample_size(10);
    group.bench_function("run_plain", |b| {
        b.iter(|| black_box(StreamingSim::run(run_cfg(false))));
    });
    group.bench_function("run_traced", |b| {
        b.iter(|| black_box(StreamingSim::run_instrumented(run_cfg(true))));
    });
    group.finish();
}

fn bench_causal_hot_path(c: &mut Criterion) {
    c.bench_function("causal_trace_lifecycle", |b| {
        let mut log = CausalLog::new(&TelemetryConfig::default());
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            let t0 = SimTime::from_millis(id);
            log.begin(id, id % 64, 1, 2, t0, t0, t0 + SimDuration::from_millis(100), 30);
            log.stamp(id, Stage::Enqueued, t0 + SimDuration::from_millis(5));
            log.stamp(id, Stage::TxStart, t0 + SimDuration::from_millis(6));
            log.stamp(id, Stage::FirstPacket, t0 + SimDuration::from_millis(16));
            log.set_propagation(id, SimDuration::from_millis(10));
            log.stamp(id, Stage::Delivered, t0 + SimDuration::from_millis(40));
            log.finish(id, Outcome::OnTime, t0 + SimDuration::from_millis(40));
            black_box(log.drop_packets())
        });
    });
}

criterion_group!(benches, bench_run_overhead, bench_causal_hot_path);
criterion_main!(benches);
