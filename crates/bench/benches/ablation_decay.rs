//! Ablation: the exponential age-decay factor φ in Eq. 14.
//!
//! Without decay, segments that already waited keep absorbing drops
//! every rebalance ("drop excessive number of packets", §III-C). We
//! enqueue a congested burst and compare how evenly drops spread.

use cloudfog_core::config::SystemParams;
use cloudfog_core::schedule::{SchedulingPolicy, SenderBuffer};
use cloudfog_core::streaming::{Segment, SegmentId};
use cloudfog_net::bandwidth::Mbps;
use cloudfog_sim::time::SimTime;
use cloudfog_workload::games::GAMES;
use cloudfog_workload::player::PlayerId;

/// Returns (drops on the aged segment, drops on fresh segments).
fn run(decay_lambda: f64) -> (u32, u32) {
    // A drop budget gentle enough that Eq. 14's *allocation* matters:
    // with the default σ the deficit saturates every segment's
    // tolerance budget and the weights become irrelevant.
    let params = SystemParams {
        decay_lambda,
        sigma_per_packet: cloudfog_sim::time::SimDuration::from_millis(8),
        ..Default::default()
    };
    let mut buf = SenderBuffer::new(SchedulingPolicy::DeadlineDriven, Mbps(4.0), &params);
    // One loss-tolerant FPS segment queued early and stuck (it has
    // waited 2.5 s by the time congestion hits).
    let game_old = &GAMES[4];
    let mut old = Segment::new(
        SegmentId(0),
        PlayerId(0),
        game_old,
        game_old.max_quality(),
        SimTime::ZERO,
        SimTime::ZERO,
        &params,
    );
    old.enqueued_at = SimTime::ZERO;
    buf.enqueue(old, SimTime::ZERO, &params);
    // One congested segment arrives 2.5 s later: it is predicted late
    // and Eq. 14 spreads the deficit over it and the aged segment.
    // (A single rebalance keeps the allocation visible — repeated
    // rebalances would saturate every tolerance budget and hide the
    // weighting.)
    let now = SimTime::from_millis(2_500);
    let game = &GAMES[1]; // 90 ms MMORPG at top quality
    let mut seg = Segment::new(
        SegmentId(1),
        PlayerId(1),
        game,
        game.max_quality(),
        SimTime::from_millis(2_460),
        now,
        &params,
    );
    seg.enqueued_at = now;
    buf.enqueue(seg, now, &params);
    let mut old_drops = 0;
    let mut fresh_drops = 0;
    for s in buf.segments() {
        if s.id == SegmentId(0) {
            old_drops = s.dropped_packets;
        } else {
            fresh_drops += s.dropped_packets;
        }
    }
    (old_drops, fresh_drops)
}

fn main() {
    println!("== ablation: Eq. 14 exponential decay φ ==");
    let (old_off, fresh_off) = run(0.0); // φ = 1 always: no age protection
    let (old_on, fresh_on) = run(1.0); // paper default λ = 1
    println!("decay off (λ=0): aged segment lost {old_off} packets, fresh segments {fresh_off}");
    println!("decay on  (λ=1): aged segment lost {old_on} packets, fresh segments {fresh_on}");
    println!("verdict: with decay, the segment that already waited 2.5 s is protected");
    assert!(old_on <= old_off, "decay must not increase drops on the aged segment");
}
