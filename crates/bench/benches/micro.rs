//! Criterion microbenchmarks of the hot paths: event engine
//! throughput, supernode assignment, rate-adaptation decisions,
//! deadline-buffer enqueue, and a small end-to-end streaming run.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cloudfog_core::adapt::RateController;
use cloudfog_core::config::{ExperimentProfile, SystemParams};
use cloudfog_core::infra::assign_player;
use cloudfog_core::schedule::{SchedulingPolicy, SenderBuffer};
use cloudfog_core::streaming::{Segment, SegmentId};
use cloudfog_core::systems::{Deployment, StreamingSim, StreamingSimConfig, SystemKind};
use cloudfog_net::bandwidth::Mbps;
use cloudfog_sim::event::EventQueue;
use cloudfog_sim::rng::Rng;
use cloudfog_sim::time::{SimDuration, SimTime};
use cloudfog_workload::games::GAMES;
use cloudfog_workload::player::PlayerId;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_hold_op", |b| {
        let mut queue = EventQueue::new();
        let mut rng = Rng::new(1);
        let mut now = SimTime::ZERO;
        for i in 0..4_096u64 {
            queue.push(now + SimDuration::from_micros(rng.below(1_000_000)), i);
        }
        b.iter(|| {
            let ev = queue.pop().expect("non-empty");
            now = ev.time;
            queue.push(now + SimDuration::from_micros(rng.below(1_000_000)), ev.event);
            black_box(ev.event)
        });
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng_pareto", |b| {
        let mut rng = Rng::new(2);
        b.iter(|| black_box(rng.pareto(5.0, 1.0)));
    });
    c.bench_function("rng_poisson_mean20", |b| {
        let mut rng = Rng::new(3);
        b.iter(|| black_box(rng.poisson(20.0)));
    });
}

fn bench_assignment(c: &mut Criterion) {
    let profile = ExperimentProfile::peersim(0.06);
    let deployment = Deployment::build(SystemKind::CloudFogB, &profile, 5, None, None);
    let params = SystemParams::default();
    c.bench_function("supernode_assignment_600sn_equiv", |b| {
        let mut rng = Rng::new(4);
        let mut p = 0u32;
        b.iter(|| {
            let pid = PlayerId(p % deployment.population.len() as u32);
            p += 1;
            let host = deployment.population.host_of(pid);
            black_box(assign_player(
                deployment.topology(),
                &deployment.supernodes,
                host,
                &GAMES[(p % 5) as usize],
                &params,
                &mut rng,
            ))
        });
    });
}

fn bench_adaptation(c: &mut Criterion) {
    c.bench_function("rate_controller_observe", |b| {
        let mut controller = RateController::new(&GAMES[1], 0.5, 3);
        let tau = SimDuration::from_millis(200);
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(
                controller
                    .observe_explained(
                        SimTime::from_millis(k * 200),
                        if k.is_multiple_of(7) { 0.3 } else { 1.4 },
                        1.0,
                        tau,
                    )
                    .0,
            )
        });
    });
}

fn bench_sender_buffer(c: &mut Criterion) {
    let params = SystemParams::default();
    c.bench_function("deadline_buffer_enqueue_pop", |b| {
        b.iter_batched(
            || SenderBuffer::new(SchedulingPolicy::DeadlineDriven, Mbps(30.0), &params),
            |mut buf| {
                for i in 0..32u64 {
                    let game = &GAMES[(i % 5) as usize];
                    let now = SimTime::from_millis(i * 10);
                    let mut seg = Segment::new(
                        SegmentId(i),
                        PlayerId(i as u32),
                        game,
                        game.max_quality(),
                        now,
                        now,
                        &params,
                    );
                    seg.enqueued_at = now;
                    buf.enqueue(seg, now, &params);
                }
                while let Some(s) = buf.pop_next() {
                    black_box(s.id);
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_streaming_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("streaming_sim_100p_10s", |b| {
        b.iter(|| {
            let cfg = StreamingSimConfig::builder(SystemKind::CloudFogA)
                .players(100)
                .seed(9)
                .ramp(SimDuration::from_secs(2))
                .horizon(SimDuration::from_secs(10))
                .build();
            black_box(StreamingSim::run(cfg))
        });
    });
    group.finish();
}

fn bench_world_step(c: &mut Criterion) {
    use cloudfog_game::prelude::*;
    let mut group = c.benchmark_group("virtual_world");
    group.sample_size(20);
    for (label, parallel) in [("step_sequential", false), ("step_parallel", true)] {
        group.bench_function(label, |b| {
            let mut rng = Rng::new(3);
            let mut world = World::new(WorldConfig::default(), 3_000, &mut rng);
            let subs: Vec<Subscriber> = (0..60)
                .map(|s| Subscriber {
                    id: s,
                    players: (0..50).map(|k| AvatarId(s * 50 + k)).collect(),
                })
                .collect();
            let mut action_rng = Rng::new(4);
            b.iter(|| {
                for i in 0..1_000u32 {
                    let a = AvatarId(action_rng.below(3_000) as u32);
                    let dest = WorldPos {
                        x: action_rng.range_f64(0.0, 4_000.0),
                        y: action_rng.range_f64(0.0, 4_000.0),
                    };
                    world.submit(a, Action::MoveTo(dest));
                    let _ = i;
                }
                let out = if parallel { world.step_parallel(&subs) } else { world.step(&subs) };
                black_box(out.len())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_rng,
    bench_assignment,
    bench_adaptation,
    bench_sender_buffer,
    bench_streaming_run,
    bench_world_step
);
criterion_main!(benches);
