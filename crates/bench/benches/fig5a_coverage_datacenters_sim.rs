//! Figure 5(a): user coverage vs number of datacenters (PeerSim).
//!
//! Pure cloud gaming; datacenters swept 5 → 25, latency requirements
//! 30 → 110 ms. The paper's findings: more datacenters increase
//! coverage, stricter requirements decrease it, and the marginal gain
//! of extra datacenters flattens out.

use cloudfog_bench::{figures, pct, RunScale, Table};

fn main() {
    let scale = RunScale::from_env();
    let dcs = [5usize, 10, 15, 20, 25];
    let series =
        figures::coverage_vs_datacenters(&scale.peersim(), &dcs, scale.seed, scale.workers);

    let mut t = Table::new(format!(
        "Figure 5(a) — coverage vs #datacenters (PeerSim, {} players)",
        scale.peersim().population.players
    ))
    .headers(
        std::iter::once("requirement".to_string()).chain(series.iter().map(|s| s.label.clone())),
    )
    .paper_shape(
        "coverage rises with datacenters but saturates; stricter requirement ⇒ lower coverage",
    );
    for (i, &req) in figures::REQUIREMENTS_MS.iter().enumerate() {
        t.row(
            std::iter::once(format!("{req} ms"))
                .chain(series.iter().map(|s| pct(s.points[i].coverage))),
        );
    }
    t.print();
    t.maybe_write_csv("fig5a");
}
