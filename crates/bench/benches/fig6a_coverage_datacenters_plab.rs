//! Figure 6(a): user coverage vs number of datacenters (PlanetLab).
//!
//! Same sweep as 5(a) on the 750-host PlanetLab-profile universe with
//! the paper's Princeton/UCLA base sites.

use cloudfog_bench::{figures, pct, RunScale, Table};

fn main() {
    let scale = RunScale::from_env();
    let dcs = [2usize, 5, 10, 15, 20];
    let series =
        figures::coverage_vs_datacenters(&scale.planetlab(), &dcs, scale.seed, scale.workers);

    let mut t = Table::new("Figure 6(a) — coverage vs #datacenters (PlanetLab, 750 hosts)")
        .headers(
            std::iter::once("requirement".to_string())
                .chain(series.iter().map(|s| s.label.clone())),
        )
        .paper_shape("same trend as Fig. 5(a): gains from extra datacenters flatten");
    for (i, &req) in figures::REQUIREMENTS_MS.iter().enumerate() {
        t.row(
            std::iter::once(format!("{req} ms"))
                .chain(series.iter().map(|s| pct(s.points[i].coverage))),
        );
    }
    t.print();
    t.maybe_write_csv("fig6a");
}
