//! Figure 2: video parameters for different quality levels.
//!
//! Not a measurement — the table *is* the artifact; this target prints
//! our catalogue next to the paper's values and verifies they match.

use cloudfog_bench::Table;
use cloudfog_workload::games::{adjust_up_factor, GAMES, QUALITY_LEVELS};

fn main() {
    let mut t = Table::new("Figure 2 — video parameters for different quality levels")
        .headers(["level", "resolution", "bitrate", "latency req", "tolerance ρ"])
        .paper_shape("exact table from the paper (levels 1–5)");
    for q in QUALITY_LEVELS.iter().rev() {
        t.row([
            q.level.to_string(),
            format!("{}x{}", q.width, q.height),
            format!("{} kbps", q.bitrate_kbps),
            format!("{} ms", q.latency_requirement_ms),
            format!("{:.1}", q.latency_tolerance),
        ]);
    }
    t.print();

    let mut g = Table::new("Game catalogue (§IV: five games)")
        .headers(["game", "genre", "latency req", "ρ", "loss tolerance L̃t"])
        .paper_shape("requirements span 30–110 ms; loss tolerance anti-correlates with latency");
    for game in GAMES {
        g.row([
            game.name.to_string(),
            game.genre.to_string(),
            format!("{} ms", game.latency_requirement_ms),
            format!("{:.1}", game.latency_tolerance),
            format!("{:.2}", game.loss_tolerance),
        ]);
    }
    g.print();

    println!("adjust-up factor β (Eq. 10) = {:.4}", adjust_up_factor());

    // Exact-match guard: the reproduction is only valid if the table
    // is the paper's.
    let expect = [
        (1u8, 288u32, 216u32, 300u32, 30u32),
        (2, 384, 216, 500, 50),
        (3, 640, 480, 800, 70),
        (4, 720, 486, 1200, 90),
        (5, 1280, 720, 1800, 110),
    ];
    for (q, e) in QUALITY_LEVELS.iter().zip(expect) {
        assert_eq!((q.level, q.width, q.height, q.bitrate_kbps, q.latency_requirement_ms), e);
    }
    println!("fig2: table matches the paper exactly");
}
