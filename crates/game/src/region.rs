//! kd-tree partitioning of the virtual world.
//!
//! MMOG servers split the world into regions and balance them across
//! machines; the paper's related work points to Bezerra et al.'s
//! kd-tree scheme, which recursively splits along the median of the
//! avatar distribution so each leaf holds a similar number of avatars.
//! The cloud tier uses this to parallelize state computation; we also
//! use the leaf populations to quantify load imbalance.

use crate::avatar::WorldPos;

/// A rectangular region of the world.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    /// Minimum corner.
    pub min: WorldPos,
    /// Maximum corner.
    pub max: WorldPos,
}

impl Rect {
    /// The whole-world rectangle.
    pub fn new(min: WorldPos, max: WorldPos) -> Rect {
        assert!(min.x <= max.x && min.y <= max.y, "degenerate rect");
        Rect { min, max }
    }

    /// Point-in-rect test (inclusive).
    pub fn contains(&self, p: &WorldPos) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Width along x.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }
}

/// A node of the kd-tree.
#[derive(Clone, Debug)]
enum Node {
    Leaf {
        bounds: Rect,
        /// Indices into the position array this leaf holds.
        members: Vec<usize>,
    },
    Split {
        /// Split along x (true) or y (false).
        along_x: bool,
        /// Split coordinate.
        at: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A balanced kd-tree over avatar positions.
#[derive(Clone, Debug)]
pub struct KdPartition {
    root: Node,
    leaves: usize,
}

impl KdPartition {
    /// Partition `positions` into at most `max_regions` leaves (power
    /// of two recommended), splitting along the median of the longer
    /// axis each time — Bezerra et al.'s balancing rule.
    pub fn build(bounds: Rect, positions: &[WorldPos], max_regions: usize) -> KdPartition {
        assert!(max_regions >= 1);
        let indices: Vec<usize> = (0..positions.len()).collect();
        let mut leaves = 0;
        let root = Self::split(bounds, indices, positions, max_regions, &mut leaves);
        KdPartition { root, leaves }
    }

    fn split(
        bounds: Rect,
        mut members: Vec<usize>,
        positions: &[WorldPos],
        budget: usize,
        leaves: &mut usize,
    ) -> Node {
        if budget <= 1 || members.len() <= 1 {
            *leaves += 1;
            return Node::Leaf { bounds, members };
        }
        let along_x = bounds.width() >= bounds.height();
        members.sort_by(|&a, &b| {
            let (ka, kb) = if along_x {
                (positions[a].x, positions[b].x)
            } else {
                (positions[a].y, positions[b].y)
            };
            ka.partial_cmp(&kb).expect("finite coordinates")
        });
        let mid = members.len() / 2;
        let at = if along_x { positions[members[mid]].x } else { positions[members[mid]].y };
        let (left_mem, right_mem): (Vec<usize>, Vec<usize>) = {
            let right = members.split_off(mid);
            (members, right)
        };
        let (lb, rb) = if along_x {
            (
                Rect { min: bounds.min, max: WorldPos { x: at, y: bounds.max.y } },
                Rect { min: WorldPos { x: at, y: bounds.min.y }, max: bounds.max },
            )
        } else {
            (
                Rect { min: bounds.min, max: WorldPos { x: bounds.max.x, y: at } },
                Rect { min: WorldPos { x: bounds.min.x, y: at }, max: bounds.max },
            )
        };
        let half = budget / 2;
        Node::Split {
            along_x,
            at,
            left: Box::new(Self::split(lb, left_mem, positions, half, leaves)),
            right: Box::new(Self::split(rb, right_mem, positions, budget - half, leaves)),
        }
    }

    /// Number of leaf regions.
    pub fn regions(&self) -> usize {
        self.leaves
    }

    /// Index of the leaf region containing `p` (0-based, depth-first
    /// order).
    pub fn region_of(&self, p: &WorldPos) -> usize {
        let mut idx = 0;
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { .. } => return idx,
                Node::Split { along_x, at, left, right, .. } => {
                    let key = if *along_x { p.x } else { p.y };
                    // The build places the median element (key == at)
                    // in the right half; mirror that here.
                    if key < *at {
                        node = left;
                    } else {
                        idx += count_leaves(left);
                        node = right;
                    }
                }
            }
        }
    }

    /// Avatar count per leaf region (depth-first order).
    pub fn loads(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.leaves);
        collect_loads(&self.root, &mut out);
        out
    }

    /// Load imbalance: max leaf load over mean leaf load (1.0 =
    /// perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let loads = self.loads();
        let total: usize = loads.iter().sum();
        if total == 0 || loads.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / loads.len() as f64;
        let max = *loads.iter().max().expect("non-empty") as f64;
        max / mean
    }

    /// Bounds of each leaf region (depth-first order).
    pub fn region_bounds(&self) -> Vec<Rect> {
        let mut out = Vec::with_capacity(self.leaves);
        collect_bounds(&self.root, &mut out);
        out
    }
}

fn count_leaves(node: &Node) -> usize {
    match node {
        Node::Leaf { .. } => 1,
        Node::Split { left, right, .. } => count_leaves(left) + count_leaves(right),
    }
}

fn collect_loads(node: &Node, out: &mut Vec<usize>) {
    match node {
        Node::Leaf { members, .. } => out.push(members.len()),
        Node::Split { left, right, .. } => {
            collect_loads(left, out);
            collect_loads(right, out);
        }
    }
}

fn collect_bounds(node: &Node, out: &mut Vec<Rect>) {
    match node {
        Node::Leaf { bounds, .. } => out.push(*bounds),
        Node::Split { left, right, .. } => {
            collect_bounds(left, out);
            collect_bounds(right, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudfog_sim::rng::Rng;

    fn world() -> Rect {
        Rect::new(WorldPos { x: 0.0, y: 0.0 }, WorldPos { x: 1000.0, y: 1000.0 })
    }

    fn random_positions(n: usize, seed: u64) -> Vec<WorldPos> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| WorldPos { x: rng.range_f64(0.0, 1000.0), y: rng.range_f64(0.0, 1000.0) })
            .collect()
    }

    #[test]
    fn builds_the_requested_number_of_regions() {
        let positions = random_positions(1000, 1);
        let tree = KdPartition::build(world(), &positions, 16);
        assert_eq!(tree.regions(), 16);
        assert_eq!(tree.loads().len(), 16);
        assert_eq!(tree.region_bounds().len(), 16);
    }

    #[test]
    fn uniform_load_is_balanced() {
        let positions = random_positions(1600, 2);
        let tree = KdPartition::build(world(), &positions, 16);
        let loads = tree.loads();
        assert_eq!(loads.iter().sum::<usize>(), 1600);
        // Median splits ⇒ leaf loads within ±1 of each other.
        let min = *loads.iter().min().unwrap();
        let max = *loads.iter().max().unwrap();
        assert!(max - min <= 16, "loads {loads:?}");
        assert!(tree.imbalance() < 1.15, "imbalance {}", tree.imbalance());
    }

    #[test]
    fn clustered_load_is_still_balanced_by_median_splits() {
        // A hotspot city: 90 % of avatars in one corner. The kd-tree's
        // median splits adapt region sizes so leaf loads stay even —
        // the whole point of Bezerra et al.'s scheme.
        let mut rng = Rng::new(3);
        let mut positions = Vec::new();
        for _ in 0..900 {
            positions.push(WorldPos { x: rng.range_f64(0.0, 100.0), y: rng.range_f64(0.0, 100.0) });
        }
        for _ in 0..100 {
            positions
                .push(WorldPos { x: rng.range_f64(0.0, 1000.0), y: rng.range_f64(0.0, 1000.0) });
        }
        let tree = KdPartition::build(world(), &positions, 8);
        assert!(tree.imbalance() < 1.3, "imbalance {}", tree.imbalance());
    }

    #[test]
    fn region_of_agrees_with_membership_counts() {
        let positions = random_positions(500, 4);
        let tree = KdPartition::build(world(), &positions, 8);
        let mut counted = vec![0usize; tree.regions()];
        for p in &positions {
            counted[tree.region_of(p)] += 1;
        }
        // region_of resolves split boundaries the same way build does
        // for non-degenerate (distinct-coordinate) inputs.
        assert_eq!(counted.iter().sum::<usize>(), 500);
        let loads = tree.loads();
        let disagreement: usize = counted.iter().zip(&loads).map(|(a, b)| a.abs_diff(*b)).sum();
        assert!(disagreement <= 4, "counted {counted:?} vs loads {loads:?}");
    }

    #[test]
    fn single_region_degenerate_case() {
        let positions = random_positions(10, 5);
        let tree = KdPartition::build(world(), &positions, 1);
        assert_eq!(tree.regions(), 1);
        assert_eq!(tree.loads(), vec![10]);
        assert_eq!(tree.region_of(&positions[3]), 0);
    }

    #[test]
    fn rect_contains() {
        let r = world();
        assert!(r.contains(&WorldPos { x: 500.0, y: 500.0 }));
        assert!(!r.contains(&WorldPos { x: -1.0, y: 500.0 }));
        assert!(r.contains(&WorldPos { x: 0.0, y: 0.0 }), "inclusive edges");
    }
}
