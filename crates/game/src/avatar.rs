//! Avatars and player actions.
//!
//! The paper's cloud "collects action information from all involved
//! players ... and performs the computation of the new game state of
//! the virtual world (including the new shape and position of objects
//! and states of avatars)". This module is that vocabulary: an avatar
//! with position, heading, health and combat state, and the action
//! alphabet players submit.

/// Identifier of an avatar (one per online player).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AvatarId(pub u32);

impl AvatarId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A position in the virtual world (metres on a flat map).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct WorldPos {
    /// East–west coordinate.
    pub x: f64,
    /// North–south coordinate.
    pub y: f64,
}

impl WorldPos {
    /// Euclidean distance.
    pub fn distance(&self, other: &WorldPos) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// What a player asks their avatar to do this tick (§III-A's "launching
/// a strike or moving to a new place").
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Action {
    /// Stand still.
    Idle,
    /// Move toward a destination at the avatar's speed.
    MoveTo(WorldPos),
    /// Strike a target avatar (melee range check applies).
    Strike(AvatarId),
    /// Cast a ranged ability at a target.
    Cast(AvatarId),
    /// Emote/chat — state-light but still an update.
    Emote(u8),
}

/// Combat/life state of an avatar.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LifeState {
    /// Normal play.
    Alive,
    /// Downed; respawns after a delay.
    Dead,
}

/// One avatar's authoritative state.
#[derive(Clone, Debug)]
pub struct Avatar {
    /// Identifier.
    pub id: AvatarId,
    /// Current position.
    pub pos: WorldPos,
    /// Current movement destination, if moving.
    pub destination: Option<WorldPos>,
    /// Movement speed (m per tick).
    pub speed: f64,
    /// Hit points.
    pub hp: i32,
    /// Maximum hit points.
    pub max_hp: i32,
    /// Life state.
    pub life: LifeState,
    /// Ticks remaining until respawn when dead.
    pub respawn_in: u32,
    /// Monotone version: bumped every time any field changes, so
    /// update generation can diff cheaply.
    pub version: u64,
}

impl Avatar {
    /// A fresh avatar at `pos`.
    pub fn new(id: AvatarId, pos: WorldPos) -> Avatar {
        Avatar {
            id,
            pos,
            destination: None,
            speed: 5.0,
            hp: 100,
            max_hp: 100,
            life: LifeState::Alive,
            respawn_in: 0,
            version: 0,
        }
    }

    /// True when the avatar can act.
    pub fn alive(&self) -> bool {
        self.life == LifeState::Alive
    }

    /// Apply `damage`, possibly dying; returns true if state changed.
    pub fn take_damage(&mut self, damage: i32, respawn_ticks: u32) -> bool {
        if !self.alive() || damage <= 0 {
            return false;
        }
        self.hp -= damage;
        if self.hp <= 0 {
            self.hp = 0;
            self.life = LifeState::Dead;
            self.respawn_in = respawn_ticks;
            self.destination = None;
        }
        self.version += 1;
        true
    }

    /// Advance movement/respawn by one tick; returns true if state
    /// changed.
    pub fn tick(&mut self) -> bool {
        match self.life {
            LifeState::Dead => {
                if self.respawn_in > 0 {
                    self.respawn_in -= 1;
                    if self.respawn_in == 0 {
                        self.life = LifeState::Alive;
                        self.hp = self.max_hp;
                        self.version += 1;
                        return true;
                    }
                }
                false
            }
            LifeState::Alive => {
                let Some(dest) = self.destination else { return false };
                let dist = self.pos.distance(&dest);
                if dist <= self.speed {
                    self.pos = dest;
                    self.destination = None;
                } else {
                    let f = self.speed / dist;
                    self.pos.x += (dest.x - self.pos.x) * f;
                    self.pos.y += (dest.y - self.pos.y) * f;
                }
                self.version += 1;
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn movement_converges_to_destination() {
        let mut a = Avatar::new(AvatarId(0), WorldPos { x: 0.0, y: 0.0 });
        a.destination = Some(WorldPos { x: 12.0, y: 0.0 });
        let mut changed = 0;
        for _ in 0..10 {
            if a.tick() {
                changed += 1;
            }
        }
        assert_eq!(a.pos, WorldPos { x: 12.0, y: 0.0 });
        assert!(a.destination.is_none());
        assert_eq!(changed, 3, "5 m/tick over 12 m = 3 ticks of change");
    }

    #[test]
    fn damage_and_respawn_cycle() {
        let mut a = Avatar::new(AvatarId(1), WorldPos::default());
        assert!(a.take_damage(60, 5));
        assert!(a.alive());
        assert!(a.take_damage(60, 5));
        assert!(!a.alive());
        assert_eq!(a.hp, 0);
        // Dead avatars take no further damage.
        assert!(!a.take_damage(10, 5));
        // Respawn after 5 ticks.
        for _ in 0..4 {
            assert!(!a.tick());
        }
        assert!(a.tick(), "respawn tick changes state");
        assert!(a.alive());
        assert_eq!(a.hp, a.max_hp);
    }

    #[test]
    fn versions_only_bump_on_change() {
        let mut a = Avatar::new(AvatarId(2), WorldPos::default());
        let v0 = a.version;
        assert!(!a.tick(), "idle avatar does not change");
        assert_eq!(a.version, v0);
        a.destination = Some(WorldPos { x: 3.0, y: 4.0 });
        a.tick();
        assert!(a.version > v0);
    }

    #[test]
    fn distance_is_euclidean() {
        let a = WorldPos { x: 0.0, y: 0.0 };
        let b = WorldPos { x: 3.0, y: 4.0 };
        assert_eq!(a.distance(&b), 5.0);
    }
}
