//! Area-of-interest (AoI) management.
//!
//! A player only needs updates about entities near their avatar; the
//! supernode rendering for a set of players needs the union of their
//! AoIs. This module computes visible sets with a uniform spatial
//! hash grid — O(1) expected per query — which is what keeps
//! update-feed sizes (the paper's Λ) proportional to *local* activity
//! rather than world population.

use std::collections::HashMap;

use crate::avatar::{AvatarId, WorldPos};

/// Uniform grid spatial index over avatar positions.
#[derive(Clone, Debug)]
pub struct InterestGrid {
    cell: f64,
    cells: HashMap<(i64, i64), Vec<AvatarId>>,
}

impl InterestGrid {
    /// Build an index with `cell`-sized buckets (use the AoI radius).
    pub fn new(cell: f64) -> InterestGrid {
        assert!(cell > 0.0);
        InterestGrid { cell, cells: HashMap::new() }
    }

    fn key(&self, p: &WorldPos) -> (i64, i64) {
        ((p.x / self.cell).floor() as i64, (p.y / self.cell).floor() as i64)
    }

    /// Rebuild from positions (called once per tick).
    pub fn rebuild<'a>(&mut self, avatars: impl Iterator<Item = (AvatarId, &'a WorldPos)>) {
        self.cells.clear();
        for (id, pos) in avatars {
            self.cells.entry(self.key(pos)).or_default().push(id);
        }
    }

    /// All avatars within `radius` of `centre` (excluding none; the
    /// caller filters self if needed). Exact distance check after the
    /// grid prefilter.
    pub fn within<'a>(
        &'a self,
        centre: &WorldPos,
        radius: f64,
        position_of: impl Fn(AvatarId) -> WorldPos + 'a,
    ) -> Vec<AvatarId> {
        let r_cells = (radius / self.cell).ceil() as i64;
        let (cx, cy) = self.key(centre);
        let mut out = Vec::new();
        for dx in -r_cells..=r_cells {
            for dy in -r_cells..=r_cells {
                if let Some(bucket) = self.cells.get(&(cx + dx, cy + dy)) {
                    for &id in bucket {
                        if position_of(id).distance(centre) <= radius {
                            out.push(id);
                        }
                    }
                }
            }
        }
        out.sort_unstable(); // deterministic order
        out
    }

    /// Number of occupied cells (diagnostics).
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }
}

/// The union of several players' visible sets — what one supernode
/// must receive updates for.
pub fn union_of_interest(
    grid: &InterestGrid,
    centres: &[WorldPos],
    radius: f64,
    position_of: impl Fn(AvatarId) -> WorldPos + Copy,
) -> Vec<AvatarId> {
    let mut all: Vec<AvatarId> =
        centres.iter().flat_map(|c| grid.within(c, radius, position_of)).collect();
    all.sort_unstable();
    all.dedup();
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions() -> Vec<WorldPos> {
        vec![
            WorldPos { x: 0.0, y: 0.0 },
            WorldPos { x: 10.0, y: 0.0 },
            WorldPos { x: 100.0, y: 0.0 },
            WorldPos { x: 0.0, y: 30.0 },
            WorldPos { x: 500.0, y: 500.0 },
        ]
    }

    fn grid(ps: &[WorldPos]) -> InterestGrid {
        let mut g = InterestGrid::new(50.0);
        g.rebuild(ps.iter().enumerate().map(|(i, p)| (AvatarId(i as u32), p)));
        g
    }

    #[test]
    fn within_radius_is_exact() {
        let ps = positions();
        let g = grid(&ps);
        let pos_of = |id: AvatarId| ps[id.index()];
        let near = g.within(&ps[0], 35.0, pos_of);
        assert_eq!(near, vec![AvatarId(0), AvatarId(1), AvatarId(3)]);
        let near = g.within(&ps[0], 5.0, pos_of);
        assert_eq!(near, vec![AvatarId(0)]);
    }

    #[test]
    fn far_avatars_are_excluded() {
        let ps = positions();
        let g = grid(&ps);
        let pos_of = |id: AvatarId| ps[id.index()];
        let near = g.within(&ps[4], 100.0, pos_of);
        assert_eq!(near, vec![AvatarId(4)], "the hermit sees only itself");
    }

    #[test]
    fn union_deduplicates_overlapping_aois() {
        let ps = positions();
        let g = grid(&ps);
        let pos_of = |id: AvatarId| ps[id.index()];
        // Two overlapping centres around the cluster at the origin.
        let centres = [ps[0], ps[1]];
        let u = union_of_interest(&g, &centres, 35.0, pos_of);
        assert_eq!(u, vec![AvatarId(0), AvatarId(1), AvatarId(3)]);
    }

    #[test]
    fn rebuild_replaces_contents() {
        let ps = positions();
        let mut g = grid(&ps);
        let moved = [WorldPos { x: 900.0, y: 900.0 }];
        g.rebuild(moved.iter().map(|p| (AvatarId(9), p)));
        let pos_of = |_: AvatarId| moved[0];
        assert_eq!(g.within(&moved[0], 10.0, pos_of), vec![AvatarId(9)]);
        assert_eq!(g.occupied_cells(), 1);
    }
}
