//! The world tick loop — the "intensive computation" the cloud runs.
//!
//! Each tick the engine: applies queued player actions, advances
//! movement and respawns, resolves combat, re-partitions regions when
//! imbalance grows, rebuilds the interest index, and emits per-
//! subscriber update messages. It is deliberately a straightforward
//! authoritative-server loop: the substrate the CloudFog cloud tier
//! would run, sized so experiments can measure realistic update-feed
//! bandwidths (Λ).

use cloudfog_pool::{default_workers, for_each_chunk_mut, map_indexed};
use cloudfog_sim::rng::Rng;

use crate::avatar::{Action, Avatar, AvatarId, WorldPos};
use crate::interest::{union_of_interest, InterestGrid};
use crate::region::{KdPartition, Rect};
use crate::update::{update_rate_mbps, UpdateMessage, UpdateTracker};

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct WorldConfig {
    /// World bounds (metres).
    pub size: f64,
    /// Area-of-interest radius (metres).
    pub aoi_radius: f64,
    /// Melee strike range (metres).
    pub strike_range: f64,
    /// Ranged cast range (metres).
    pub cast_range: f64,
    /// Damage per strike.
    pub strike_damage: i32,
    /// Damage per cast.
    pub cast_damage: i32,
    /// Respawn delay in ticks.
    pub respawn_ticks: u32,
    /// Target number of kd-tree regions (server shards).
    pub regions: usize,
    /// Re-partition when imbalance exceeds this factor.
    pub rebalance_threshold: f64,
    /// Simulation ticks per second (MMOG servers run 10–30 Hz).
    pub ticks_per_sec: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            size: 4_000.0,
            aoi_radius: 150.0,
            strike_range: 5.0,
            cast_range: 60.0,
            strike_damage: 15,
            cast_damage: 8,
            respawn_ticks: 50,
            regions: 16,
            rebalance_threshold: 1.5,
            ticks_per_sec: 10.0,
        }
    }
}

/// A subscriber: one supernode and the avatars of its players.
#[derive(Clone, Debug)]
pub struct Subscriber {
    /// Stable id (e.g. the supernode index).
    pub id: u32,
    /// Avatars of the players this supernode serves.
    pub players: Vec<AvatarId>,
}

/// Per-tick output for one subscriber.
#[derive(Clone, Debug)]
pub struct TickOutput {
    /// Subscriber id.
    pub subscriber: u32,
    /// The update message.
    pub message: UpdateMessage,
}

/// The authoritative virtual world.
pub struct World {
    config: WorldConfig,
    avatars: Vec<Avatar>,
    /// Actions queued for the next tick, one slot per avatar.
    pending: Vec<Action>,
    partition: KdPartition,
    grid: InterestGrid,
    tracker: UpdateTracker,
    tick: u64,
    /// Bytes sent per subscriber over the run (for Λ estimation).
    bytes_sent: std::collections::BTreeMap<u32, u64>,
}

impl World {
    /// Spawn `n` avatars uniformly over the map.
    pub fn new(config: WorldConfig, n: usize, rng: &mut Rng) -> World {
        let avatars: Vec<Avatar> = (0..n)
            .map(|i| {
                let pos = WorldPos {
                    x: rng.range_f64(0.0, config.size),
                    y: rng.range_f64(0.0, config.size),
                };
                Avatar::new(AvatarId(i as u32), pos)
            })
            .collect();
        let bounds =
            Rect::new(WorldPos { x: 0.0, y: 0.0 }, WorldPos { x: config.size, y: config.size });
        let positions: Vec<WorldPos> = avatars.iter().map(|a| a.pos).collect();
        let partition = KdPartition::build(bounds, &positions, config.regions);
        let mut grid = InterestGrid::new(config.aoi_radius);
        grid.rebuild(avatars.iter().map(|a| (a.id, &a.pos)));
        World {
            config,
            pending: vec![Action::Idle; n],
            avatars,
            partition,
            grid,
            tracker: UpdateTracker::new(),
            tick: 0,
            bytes_sent: std::collections::BTreeMap::new(),
        }
    }

    /// Current tick number.
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// Avatar state (read-only).
    pub fn avatar(&self, id: AvatarId) -> &Avatar {
        &self.avatars[id.index()]
    }

    /// Number of avatars.
    pub fn len(&self) -> usize {
        self.avatars.len()
    }

    /// True iff the world is empty.
    pub fn is_empty(&self) -> bool {
        self.avatars.is_empty()
    }

    /// The current region partition.
    pub fn partition(&self) -> &KdPartition {
        &self.partition
    }

    /// Queue `action` for `avatar` on the next tick (latest submission
    /// wins, like a real input stream).
    pub fn submit(&mut self, avatar: AvatarId, action: Action) {
        self.pending[avatar.index()] = action;
    }

    /// Advance one tick and produce update messages for `subscribers`.
    pub fn step(&mut self, subscribers: &[Subscriber]) -> Vec<TickOutput> {
        self.step_inner(subscribers, 1)
    }

    /// Like [`World::step`] but fanned out over `cloudfog-pool` worker
    /// threads: movement and respawn ticks run over disjoint avatar
    /// chunks, and the per-subscriber AoI work fans out across
    /// subscribers — the point of the kd-tree/AoI decomposition.
    /// Produces *identical* results to the sequential step (asserted
    /// by tests): the parallel phases are data-parallel over disjoint
    /// state, and AoI results are placed back in subscriber order.
    pub fn step_parallel(&mut self, subscribers: &[Subscriber]) -> Vec<TickOutput> {
        self.step_inner(subscribers, default_workers())
    }

    /// [`World::step_parallel`] with an explicit worker count — used
    /// by the 1-vs-N bit-identity tests so they don't depend on the
    /// machine or on `CLOUDFOG_WORKERS`.
    pub fn step_parallel_with(
        &mut self,
        subscribers: &[Subscriber],
        workers: usize,
    ) -> Vec<TickOutput> {
        self.step_inner(subscribers, workers)
    }

    fn step_inner(&mut self, subscribers: &[Subscriber], workers: usize) -> Vec<TickOutput> {
        self.tick += 1;

        // 1. Apply actions (serial: attacks write across avatars).
        let actions = std::mem::replace(&mut self.pending, vec![Action::Idle; self.avatars.len()]);
        for (idx, action) in actions.into_iter().enumerate() {
            self.apply(AvatarId(idx as u32), action);
        }

        // 2. Advance movement and respawns — embarrassingly parallel:
        // each avatar only touches itself.
        for_each_chunk_mut(workers, &mut self.avatars, |a| {
            a.tick();
        });

        // 3. Rebalance regions when needed (kd-tree rebuild).
        if self.partition.imbalance() > self.config.rebalance_threshold {
            let bounds = Rect::new(
                WorldPos { x: 0.0, y: 0.0 },
                WorldPos { x: self.config.size, y: self.config.size },
            );
            let positions: Vec<WorldPos> = self.avatars.iter().map(|a| a.pos).collect();
            self.partition = KdPartition::build(bounds, &positions, self.config.regions);
        }

        // 4. Refresh the interest index.
        self.grid.rebuild(self.avatars.iter().map(|a| (a.id, &a.pos)));

        // 5. Emit per-subscriber updates. The AoI queries are
        // read-only and fan out per subscriber; the tracker diff needs
        // &mut per subscriber, so compute visible sets (the expensive
        // part) in parallel, then diff serially in subscriber order.
        let positions: Vec<WorldPos> = self.avatars.iter().map(|a| a.pos).collect();
        let pos_of = |id: AvatarId| positions[id.index()];
        let grid = &self.grid;
        let aoi_radius = self.config.aoi_radius;
        let visible_sets: Vec<Vec<AvatarId>> = map_indexed(workers, subscribers, |_, sub| {
            let centres: Vec<WorldPos> =
                sub.players.iter().map(|&p| positions[p.index()]).collect();
            union_of_interest(grid, &centres, aoi_radius, pos_of)
        });
        subscribers
            .iter()
            .zip(visible_sets)
            .map(|(sub, visible)| {
                let message = self.tracker.diff(sub.id, &visible, &self.avatars, self.tick);
                *self.bytes_sent.entry(sub.id).or_insert(0) += message.bytes;
                TickOutput { subscriber: sub.id, message }
            })
            .collect()
    }

    fn apply(&mut self, actor: AvatarId, action: Action) {
        if !self.avatars[actor.index()].alive() {
            return;
        }
        match action {
            Action::Idle => {}
            Action::MoveTo(dest) => {
                let clamped = WorldPos {
                    x: dest.x.clamp(0.0, self.config.size),
                    y: dest.y.clamp(0.0, self.config.size),
                };
                let a = &mut self.avatars[actor.index()];
                a.destination = Some(clamped);
                a.version += 1;
            }
            Action::Strike(target) => {
                self.attack(actor, target, self.config.strike_range, self.config.strike_damage)
            }
            Action::Cast(target) => {
                self.attack(actor, target, self.config.cast_range, self.config.cast_damage)
            }
            Action::Emote(_) => {
                self.avatars[actor.index()].version += 1;
            }
        }
    }

    fn attack(&mut self, actor: AvatarId, target: AvatarId, range: f64, damage: i32) {
        if actor == target || target.index() >= self.avatars.len() {
            return;
        }
        let from = self.avatars[actor.index()].pos;
        let to = self.avatars[target.index()].pos;
        if from.distance(&to) <= range {
            self.avatars[target.index()].take_damage(damage, self.config.respawn_ticks);
        }
    }

    /// Mean update-feed bandwidth per subscriber so far (Mbps) — the
    /// empirical Λ of the paper's Eq. 2.
    pub fn mean_update_rate_mbps(&self) -> f64 {
        if self.bytes_sent.is_empty() || self.tick == 0 {
            return 0.0;
        }
        let total: u64 = self.bytes_sent.values().sum();
        let per_sub_per_tick = total as f64 / self.bytes_sent.len() as f64 / self.tick as f64;
        update_rate_mbps(per_sub_per_tick, self.config.ticks_per_sec)
    }

    /// Bytes sent to one subscriber so far.
    pub fn bytes_to(&self, subscriber: u32) -> u64 {
        self.bytes_sent.get(&subscriber).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(n: usize, seed: u64) -> World {
        let mut rng = Rng::new(seed);
        World::new(WorldConfig::default(), n, &mut rng)
    }

    fn everyone(n: usize) -> Vec<Subscriber> {
        vec![Subscriber { id: 0, players: (0..n as u32).map(AvatarId).collect() }]
    }

    #[test]
    fn ticks_advance_and_emit_updates() {
        let mut w = world(100, 1);
        let subs = everyone(100);
        let out = w.step(&subs);
        assert_eq!(w.tick_count(), 1);
        assert_eq!(out.len(), 1);
        // First tick: every visible avatar is a fresh delta.
        assert!(!out[0].message.deltas.is_empty());
    }

    #[test]
    fn idle_world_sends_only_overhead() {
        let mut w = world(50, 2);
        let subs = everyone(50);
        w.step(&subs);
        let out = w.step(&subs);
        assert!(
            out[0].message.deltas.is_empty(),
            "nothing moved, nothing to send: {:?}",
            out[0].message.deltas.len()
        );
    }

    #[test]
    fn movement_produces_deltas_for_nearby_subscribers_only() {
        let mut w = world(200, 3);
        // Subscriber A watches avatar 0's neighbourhood; make a far
        // avatar move — A should not hear about it unless it's close.
        let subs = vec![Subscriber { id: 1, players: vec![AvatarId(0)] }];
        w.step(&subs);
        // Find an avatar guaranteed far from avatar 0.
        let p0 = w.avatar(AvatarId(0)).pos;
        let far = (1..200)
            .map(|i| AvatarId(i as u32))
            .find(|&id| w.avatar(id).pos.distance(&p0) > 2.0 * WorldConfig::default().aoi_radius)
            .expect("someone is far away");
        w.submit(far, Action::MoveTo(WorldPos { x: p0.x + 3_000.0, y: p0.y }));
        let out = w.step(&subs);
        assert!(
            !out[0].message.deltas.contains(&far),
            "far movement must not reach an unrelated subscriber"
        );
    }

    #[test]
    fn combat_kills_and_respawns() {
        let cfg = WorldConfig { respawn_ticks: 3, strike_damage: 100, ..Default::default() };
        let mut rng = Rng::new(4);
        let mut w = World::new(cfg, 2, &mut rng);
        // Teleport avatar 1 next to avatar 0 via a move and ticks.
        let p0 = w.avatar(AvatarId(0)).pos;
        w.avatars[1].pos = WorldPos { x: p0.x + 1.0, y: p0.y };
        w.submit(AvatarId(0), Action::Strike(AvatarId(1)));
        w.step(&everyone(2));
        assert!(!w.avatar(AvatarId(1)).alive(), "one-shot strike");
        for _ in 0..3 {
            w.step(&everyone(2));
        }
        assert!(w.avatar(AvatarId(1)).alive(), "respawned after 3 ticks");
        assert_eq!(w.avatar(AvatarId(1)).hp, 100);
    }

    #[test]
    fn out_of_range_attacks_miss() {
        let mut w = world(2, 5);
        w.avatars[1].pos = WorldPos { x: w.avatars[0].pos.x + 1_000.0, y: w.avatars[0].pos.y };
        w.submit(AvatarId(0), Action::Strike(AvatarId(1)));
        w.step(&everyone(2));
        assert_eq!(w.avatar(AvatarId(1)).hp, 100, "strike out of range");
    }

    #[test]
    fn update_rate_is_activity_proportional() {
        // A busy world (everyone moving) must generate more update
        // bandwidth than an idle one.
        let mut rng = Rng::new(6);
        let mut busy = world(300, 6);
        let mut idle = world(300, 6);
        let subs = everyone(300);
        for _ in 0..20 {
            for i in 0..300u32 {
                let dest =
                    WorldPos { x: rng.range_f64(0.0, 4_000.0), y: rng.range_f64(0.0, 4_000.0) };
                busy.submit(AvatarId(i), Action::MoveTo(dest));
            }
            busy.step(&subs);
            idle.step(&subs);
        }
        assert!(
            busy.bytes_to(0) > 2 * idle.bytes_to(0),
            "busy {} vs idle {}",
            busy.bytes_to(0),
            idle.bytes_to(0)
        );
        assert!(busy.mean_update_rate_mbps() > 0.0);
    }

    #[test]
    fn empirical_lambda_is_in_the_configured_ballpark() {
        // The default SystemParams uses Λ = 0.1 Mbps per supernode.
        // A ~15-player supernode in a moderately busy world should
        // land within an order of magnitude of that.
        let mut rng = Rng::new(7);
        let mut w = world(500, 7);
        let subs = vec![Subscriber { id: 0, players: (0..15).map(AvatarId).collect() }];
        for _ in 0..50 {
            for i in 0..500u32 {
                if rng.chance(0.3) {
                    let dest =
                        WorldPos { x: rng.range_f64(0.0, 4_000.0), y: rng.range_f64(0.0, 4_000.0) };
                    w.submit(AvatarId(i), Action::MoveTo(dest));
                }
            }
            w.step(&subs);
        }
        let lambda = w.mean_update_rate_mbps();
        assert!(
            (0.001..1.0).contains(&lambda),
            "empirical Λ {lambda} Mbps should be within an order of magnitude of 0.1"
        );
    }

    #[test]
    fn parallel_step_is_identical_to_sequential() {
        let mut rng_a = Rng::new(99);
        let mut rng_b = Rng::new(99);
        let mut seq = World::new(WorldConfig::default(), 400, &mut rng_a);
        let mut par = World::new(WorldConfig::default(), 400, &mut rng_b);
        let subs: Vec<Subscriber> = (0..8)
            .map(|s| Subscriber { id: s, players: (0..50).map(|k| AvatarId(s * 50 + k)).collect() })
            .collect();
        let mut action_rng = Rng::new(5);
        for _ in 0..15 {
            for i in 0..400u32 {
                if action_rng.chance(0.4) {
                    let dest = WorldPos {
                        x: action_rng.range_f64(0.0, 4_000.0),
                        y: action_rng.range_f64(0.0, 4_000.0),
                    };
                    seq.submit(AvatarId(i), Action::MoveTo(dest));
                    par.submit(AvatarId(i), Action::MoveTo(dest));
                } else if action_rng.chance(0.2) {
                    let t = AvatarId(action_rng.below(400) as u32);
                    seq.submit(AvatarId(i), Action::Strike(t));
                    par.submit(AvatarId(i), Action::Strike(t));
                }
            }
            let a = seq.step(&subs);
            let b = par.step_parallel(&subs);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.subscriber, y.subscriber);
                assert_eq!(x.message.deltas, y.message.deltas);
                assert_eq!(x.message.bytes, y.message.bytes);
            }
        }
        for i in 0..400 {
            let (sa, pa) = (seq.avatar(AvatarId(i)), par.avatar(AvatarId(i)));
            assert_eq!(sa.pos, pa.pos);
            assert_eq!(sa.hp, pa.hp);
            assert_eq!(sa.version, pa.version);
        }
    }

    #[test]
    fn dead_avatars_cannot_act() {
        let mut w = world(2, 8);
        w.avatars[0].take_damage(200, 100);
        let before = w.avatar(AvatarId(0)).pos;
        w.submit(AvatarId(0), Action::MoveTo(WorldPos { x: 0.0, y: 0.0 }));
        w.step(&everyone(2));
        assert_eq!(w.avatar(AvatarId(0)).pos, before, "dead avatars stay put");
    }
}
