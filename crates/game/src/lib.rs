//! # cloudfog-game
//!
//! The MMOG virtual-world substrate CloudFog's cloud tier runs: the
//! "intensive computation of the new game state of the virtual world"
//! the paper offloads to datacenters while supernodes only render.
//!
//! * [`avatar`] — avatars, positions, the player action alphabet,
//!   combat/respawn state.
//! * [`region`] — kd-tree world partitioning with median splits
//!   (the Bezerra et al. load-balancing scheme the paper cites).
//! * [`interest`] — area-of-interest visibility via a spatial hash.
//! * [`update`] — per-subscriber delta generation and wire sizing;
//!   grounds the paper's Λ (cloud→supernode update bandwidth).
//! * [`engine`] — the authoritative tick loop tying it together.
//!
//! ```
//! use cloudfog_game::prelude::*;
//! use cloudfog_sim::rng::Rng;
//!
//! let mut rng = Rng::new(1);
//! let mut world = World::new(WorldConfig::default(), 200, &mut rng);
//! let subs = vec![Subscriber { id: 0, players: (0..10).map(AvatarId).collect() }];
//! world.submit(AvatarId(3), Action::MoveTo(WorldPos { x: 10.0, y: 20.0 }));
//! let out = world.step(&subs);
//! assert_eq!(out.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod avatar;
pub mod engine;
pub mod interest;
pub mod region;
pub mod update;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::avatar::{Action, Avatar, AvatarId, LifeState, WorldPos};
    pub use crate::engine::{Subscriber, TickOutput, World, WorldConfig};
    pub use crate::interest::{union_of_interest, InterestGrid};
    pub use crate::region::{KdPartition, Rect};
    pub use crate::update::{update_rate_mbps, UpdateMessage, UpdateTracker};
}
