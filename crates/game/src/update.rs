//! State-update generation: the cloud → supernode feed.
//!
//! After each tick the cloud sends every supernode the deltas of the
//! entities inside the union of its players' areas of interest
//! (§III-A: "the cloud sends the update information to the
//! supernode ... which updates its virtual world accordingly"). This
//! module diffs avatar versions per subscriber and prices the wire
//! encoding, grounding the paper's Λ (update bandwidth per supernode)
//! in actual world activity instead of a free parameter.

use std::collections::HashMap;

use crate::avatar::{Avatar, AvatarId};

/// Wire-size model for one entity delta (position + state), bytes.
/// id(4) + x(4) + y(4) + hp(2) + flags(1) + version varint(~3).
pub const BYTES_PER_DELTA: u64 = 18;
/// Fixed per-message framing overhead, bytes (header + auth + tick).
pub const MESSAGE_OVERHEAD: u64 = 24;

/// One subscriber's update message for a tick.
#[derive(Clone, Debug)]
pub struct UpdateMessage {
    /// Tick number.
    pub tick: u64,
    /// Entities whose state changed since the subscriber's last ack.
    pub deltas: Vec<AvatarId>,
    /// Encoded size in bytes.
    pub bytes: u64,
}

/// Tracks, per subscriber, the last avatar versions acknowledged, and
/// emits minimal delta messages.
#[derive(Clone, Debug, Default)]
pub struct UpdateTracker {
    /// subscriber → (avatar → last sent version).
    acked: HashMap<u32, HashMap<AvatarId, u64>>,
}

impl UpdateTracker {
    /// Fresh tracker.
    pub fn new() -> UpdateTracker {
        UpdateTracker::default()
    }

    /// Build the update message for `subscriber` covering the avatars
    /// in `visible` (its players' AoI union) at `tick`.
    ///
    /// An avatar is included when the subscriber has never seen it or
    /// its version advanced. Avatars that left the visible set are
    /// dropped from the subscriber's table (a real protocol would send
    /// a remove notice; we charge one delta for it).
    pub fn diff(
        &mut self,
        subscriber: u32,
        visible: &[AvatarId],
        avatars: &[Avatar],
        tick: u64,
    ) -> UpdateMessage {
        let table = self.acked.entry(subscriber).or_default();
        let mut deltas = Vec::new();
        for &id in visible {
            let v = avatars[id.index()].version;
            match table.get(&id) {
                Some(&seen) if seen == v => {}
                _ => {
                    table.insert(id, v);
                    deltas.push(id);
                }
            }
        }
        // Entities that vanished from view: charge a removal delta.
        let visible_set: std::collections::HashSet<AvatarId> = visible.iter().copied().collect();
        let stale: Vec<AvatarId> =
            table.keys().filter(|id| !visible_set.contains(id)).copied().collect();
        let mut removal_count = 0u64;
        for id in stale {
            table.remove(&id);
            removal_count += 1;
        }
        let bytes = MESSAGE_OVERHEAD + (deltas.len() as u64 + removal_count) * BYTES_PER_DELTA;
        UpdateMessage { tick, deltas, bytes }
    }

    /// Forget a subscriber entirely (it left the system).
    pub fn remove_subscriber(&mut self, subscriber: u32) {
        self.acked.remove(&subscriber);
    }

    /// Number of tracked subscribers.
    pub fn subscribers(&self) -> usize {
        self.acked.len()
    }
}

/// Average update bandwidth in Mbps given message sizes and tick rate.
pub fn update_rate_mbps(bytes_per_tick: f64, ticks_per_sec: f64) -> f64 {
    bytes_per_tick * ticks_per_sec * 8.0 / 1_000_000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::avatar::WorldPos;

    fn avatars(n: usize) -> Vec<Avatar> {
        (0..n).map(|i| Avatar::new(AvatarId(i as u32), WorldPos { x: i as f64, y: 0.0 })).collect()
    }

    #[test]
    fn first_diff_sends_everything_visible() {
        let avs = avatars(5);
        let mut tracker = UpdateTracker::new();
        let visible = vec![AvatarId(0), AvatarId(2), AvatarId(4)];
        let msg = tracker.diff(7, &visible, &avs, 1);
        assert_eq!(msg.deltas, visible);
        assert_eq!(msg.bytes, MESSAGE_OVERHEAD + 3 * BYTES_PER_DELTA);
    }

    #[test]
    fn unchanged_avatars_are_not_resent() {
        let avs = avatars(3);
        let mut tracker = UpdateTracker::new();
        let visible = vec![AvatarId(0), AvatarId(1)];
        tracker.diff(1, &visible, &avs, 1);
        let msg = tracker.diff(1, &visible, &avs, 2);
        assert!(msg.deltas.is_empty(), "nothing changed");
        assert_eq!(msg.bytes, MESSAGE_OVERHEAD);
    }

    #[test]
    fn changed_avatars_are_resent() {
        let mut avs = avatars(3);
        let mut tracker = UpdateTracker::new();
        let visible = vec![AvatarId(0), AvatarId(1)];
        tracker.diff(1, &visible, &avs, 1);
        avs[1].take_damage(10, 5);
        let msg = tracker.diff(1, &visible, &avs, 2);
        assert_eq!(msg.deltas, vec![AvatarId(1)]);
    }

    #[test]
    fn leaving_the_aoi_costs_a_removal_delta() {
        let avs = avatars(3);
        let mut tracker = UpdateTracker::new();
        tracker.diff(1, &[AvatarId(0), AvatarId(1)], &avs, 1);
        let msg = tracker.diff(1, &[AvatarId(0)], &avs, 2);
        assert!(msg.deltas.is_empty());
        assert_eq!(msg.bytes, MESSAGE_OVERHEAD + BYTES_PER_DELTA, "one removal");
        // Re-entering is a fresh delta.
        let msg = tracker.diff(1, &[AvatarId(0), AvatarId(1)], &avs, 3);
        assert_eq!(msg.deltas, vec![AvatarId(1)]);
    }

    #[test]
    fn subscribers_are_independent() {
        let mut avs = avatars(2);
        let mut tracker = UpdateTracker::new();
        let visible = vec![AvatarId(0)];
        tracker.diff(1, &visible, &avs, 1);
        avs[0].take_damage(5, 5);
        // Subscriber 2 never saw avatar 0 → full delta; subscriber 1
        // sees the change.
        let m2 = tracker.diff(2, &visible, &avs, 2);
        let m1 = tracker.diff(1, &visible, &avs, 2);
        assert_eq!(m2.deltas, vec![AvatarId(0)]);
        assert_eq!(m1.deltas, vec![AvatarId(0)]);
        assert_eq!(tracker.subscribers(), 2);
        tracker.remove_subscriber(2);
        assert_eq!(tracker.subscribers(), 1);
    }

    #[test]
    fn rate_conversion() {
        // 1 250 bytes per tick at 10 ticks/s = 0.1 Mbps.
        let mbps = update_rate_mbps(1_250.0, 10.0);
        assert!((mbps - 0.1).abs() < 1e-12);
    }
}
