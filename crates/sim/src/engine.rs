//! The discrete-event simulation driver.
//!
//! A simulation is a [`Model`] — a state machine that reacts to typed
//! events — plus a pending-event set and a clock. The driver pops the
//! earliest event, advances the clock to its timestamp, and hands it to
//! the model together with a [`Scheduler`] through which the model
//! schedules follow-up events. Determinism falls out of the FIFO
//! tie-break in the queue and the seeded RNG owned by the model.

use crate::calendar::PendingSet;
use crate::event::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Interface through which a model schedules future events while
/// handling the current one.
pub struct Scheduler<'a, E, Q: PendingSet<E>> {
    now: SimTime,
    queue: &'a mut Q,
    halt: &'a mut bool,
    _marker: std::marker::PhantomData<E>,
}

impl<'a, E, Q: PendingSet<E>> Scheduler<'a, E, Q> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire `delay` after now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.insert(self.now + delay, event);
    }

    /// Schedule `event` at an absolute instant. `at` must not be in the
    /// past; scheduling at `now` is allowed (fires after the current
    /// event, in insertion order).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past: {at:?} < {:?}", self.now);
        self.queue.insert(at.max(self.now), event);
    }

    /// Request that the run stop after the current event completes.
    pub fn halt(&mut self) {
        *self.halt = true;
    }

    /// Number of events pending (excluding the one being handled).
    pub fn pending(&self) -> usize {
        self.queue.pending()
    }
}

/// A simulation model: application state reacting to typed events.
pub trait Model {
    /// The event alphabet of the model.
    type Event;

    /// Handle `event` at time `sched.now()`, scheduling any follow-ups.
    fn handle(
        &mut self,
        event: Self::Event,
        sched: &mut Scheduler<'_, Self::Event, EventQueue<Self::Event>>,
    );
}

/// Outcome of a finished run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The pending set drained.
    Exhausted,
    /// The configured horizon was reached.
    HorizonReached,
    /// The configured event budget was spent.
    EventBudgetSpent,
    /// The model called [`Scheduler::halt`].
    Halted,
}

/// Summary counters of a finished run.
#[derive(Clone, Copy, Debug)]
pub struct RunReport {
    /// Why the run stopped.
    pub stop: StopReason,
    /// Number of events executed.
    pub events_executed: u64,
    /// Clock value when the run stopped.
    pub end_time: SimTime,
}

/// The simulation driver: clock + queue + limits around a [`Model`].
pub struct Simulation<M: Model> {
    /// The model under simulation (public: inspect state after a run).
    pub model: M,
    queue: EventQueue<M::Event>,
    now: SimTime,
    horizon: Option<SimTime>,
    event_budget: Option<u64>,
    executed: u64,
}

impl<M: Model> Simulation<M> {
    /// Wrap `model` with an empty event set at `t = 0`.
    pub fn new(model: M) -> Self {
        Simulation {
            model,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            horizon: None,
            event_budget: None,
            executed: 0,
        }
    }

    /// Stop the run once the clock passes `horizon` (events strictly
    /// after the horizon are not executed).
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Stop the run after at most `budget` events.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = Some(budget);
        self
    }

    /// Move the horizon of a simulation that may already have run.
    /// Calling [`Simulation::run`] again after a `HorizonReached` stop
    /// resumes from the pending queue, so a run can be driven in
    /// phases (run → inspect → extend → run) with an event stream
    /// identical to a single uninterrupted run.
    pub fn set_horizon(&mut self, horizon: SimTime) {
        self.horizon = Some(horizon);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Seed an initial event at absolute time `at`.
    pub fn seed_at(&mut self, at: SimTime, event: M::Event) {
        self.queue.push(at, event);
    }

    /// Seed an initial event at `t = 0`.
    pub fn seed(&mut self, event: M::Event) {
        self.seed_at(SimTime::ZERO, event);
    }

    /// Run until the queue drains, the horizon/budget is hit, or the
    /// model halts.
    pub fn run(&mut self) -> RunReport {
        let mut halted = false;
        loop {
            if halted {
                return self.report(StopReason::Halted);
            }
            if let Some(budget) = self.event_budget {
                if self.executed >= budget {
                    return self.report(StopReason::EventBudgetSpent);
                }
            }
            let Some(next_time) = self.queue.peek_time() else {
                return self.report(StopReason::Exhausted);
            };
            if let Some(h) = self.horizon {
                if next_time > h {
                    self.now = h;
                    return self.report(StopReason::HorizonReached);
                }
            }
            let scheduled = self.queue.pop().expect("peeked event vanished");
            debug_assert!(scheduled.time >= self.now, "time ran backwards");
            self.now = scheduled.time;
            self.executed += 1;
            let mut sched = Scheduler {
                now: self.now,
                queue: &mut self.queue,
                halt: &mut halted,
                _marker: std::marker::PhantomData,
            };
            self.model.handle(scheduled.event, &mut sched);
        }
    }

    fn report(&self, stop: StopReason) -> RunReport {
        RunReport { stop, events_executed: self.executed, end_time: self.now }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that counts down: each tick schedules the next one
    /// `step` later until `remaining` hits zero.
    struct Countdown {
        remaining: u32,
        step: SimDuration,
        fired_at: Vec<SimTime>,
    }

    enum Tick {
        Tick,
    }

    impl Model for Countdown {
        type Event = Tick;
        fn handle(&mut self, _ev: Tick, sched: &mut Scheduler<'_, Tick, EventQueue<Tick>>) {
            self.fired_at.push(sched.now());
            if self.remaining > 0 {
                self.remaining -= 1;
                sched.schedule_in(self.step, Tick::Tick);
            }
        }
    }

    #[test]
    fn runs_to_exhaustion() {
        let mut sim = Simulation::new(Countdown {
            remaining: 3,
            step: SimDuration::from_millis(10),
            fired_at: vec![],
        });
        sim.seed(Tick::Tick);
        let report = sim.run();
        assert_eq!(report.stop, StopReason::Exhausted);
        assert_eq!(report.events_executed, 4);
        assert_eq!(
            sim.model.fired_at,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(10),
                SimTime::from_millis(20),
                SimTime::from_millis(30)
            ]
        );
    }

    #[test]
    fn phased_run_matches_single_run() {
        let make = || {
            let mut sim = Simulation::new(Countdown {
                remaining: 9,
                step: SimDuration::from_millis(10),
                fired_at: vec![],
            })
            .with_horizon(SimTime::from_millis(90));
            sim.seed(Tick::Tick);
            sim
        };
        let mut whole = make();
        let single = whole.run();

        let mut phased = make();
        phased.set_horizon(SimTime::from_millis(35));
        let first = phased.run();
        assert_eq!(first.stop, StopReason::HorizonReached);
        phased.set_horizon(SimTime::from_millis(90));
        let second = phased.run();

        assert_eq!(second.stop, single.stop);
        assert_eq!(second.events_executed, single.events_executed);
        assert_eq!(second.end_time, single.end_time);
        assert_eq!(phased.model.fired_at, whole.model.fired_at);
    }

    #[test]
    fn horizon_cuts_off() {
        let mut sim = Simulation::new(Countdown {
            remaining: 1000,
            step: SimDuration::from_millis(10),
            fired_at: vec![],
        })
        .with_horizon(SimTime::from_millis(25));
        sim.seed(Tick::Tick);
        let report = sim.run();
        assert_eq!(report.stop, StopReason::HorizonReached);
        // Events at 0, 10, 20 run; 30 is past the horizon.
        assert_eq!(report.events_executed, 3);
        assert_eq!(report.end_time, SimTime::from_millis(25));
    }

    #[test]
    fn event_budget_cuts_off() {
        let mut sim = Simulation::new(Countdown {
            remaining: 1000,
            step: SimDuration::from_millis(1),
            fired_at: vec![],
        })
        .with_event_budget(5);
        sim.seed(Tick::Tick);
        let report = sim.run();
        assert_eq!(report.stop, StopReason::EventBudgetSpent);
        assert_eq!(report.events_executed, 5);
    }

    /// A model that halts itself on the third event.
    struct SelfHalting {
        seen: u32,
    }

    impl Model for SelfHalting {
        type Event = ();
        fn handle(&mut self, _ev: (), sched: &mut Scheduler<'_, (), EventQueue<()>>) {
            self.seen += 1;
            sched.schedule_in(SimDuration::from_millis(1), ());
            if self.seen == 3 {
                sched.halt();
            }
        }
    }

    #[test]
    fn model_can_halt() {
        let mut sim = Simulation::new(SelfHalting { seen: 0 });
        sim.seed(());
        let report = sim.run();
        assert_eq!(report.stop, StopReason::Halted);
        assert_eq!(sim.model.seen, 3);
    }

    #[test]
    fn same_time_events_fire_fifo() {
        struct Recorder {
            order: Vec<u32>,
        }
        impl Model for Recorder {
            type Event = u32;
            fn handle(&mut self, ev: u32, _s: &mut Scheduler<'_, u32, EventQueue<u32>>) {
                self.order.push(ev);
            }
        }
        let mut sim = Simulation::new(Recorder { order: vec![] });
        for i in 0..10 {
            sim.seed_at(SimTime::from_millis(5), i);
        }
        sim.run();
        assert_eq!(sim.model.order, (0..10).collect::<Vec<_>>());
    }
}
