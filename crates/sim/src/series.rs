//! Time-bucketed series recording.
//!
//! Experiments often want a metric *over time* — continuity per
//! 10-second window during a flash crowd, queue depth as churn hits —
//! not just an end-of-run aggregate. [`TimeSeries`] accumulates
//! observations into fixed-width buckets of simulated time and
//! exposes per-bucket means/counts; [`CounterSeries`] does the same
//! for event counts.

use crate::stats::Welford;
use crate::time::{SimDuration, SimTime};

/// Per-bucket mean/min/max of a sampled metric.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    bucket: SimDuration,
    buckets: Vec<Welford>,
}

impl TimeSeries {
    /// A series with `bucket`-wide windows starting at t = 0.
    pub fn new(bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "zero-width buckets");
        TimeSeries { bucket, buckets: Vec::new() }
    }

    fn index(&self, at: SimTime) -> usize {
        (at.as_micros() / self.bucket.as_micros()) as usize
    }

    /// Record `value` observed at `at`.
    pub fn record(&mut self, at: SimTime, value: f64) {
        let idx = self.index(at);
        if idx >= self.buckets.len() {
            self.buckets.resize_with(idx + 1, Welford::new);
        }
        self.buckets[idx].push(value);
    }

    /// Bucket width.
    pub fn bucket_width(&self) -> SimDuration {
        self.bucket
    }

    /// Number of buckets touched (including empty gaps).
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Per-bucket `(start_time, mean, count)` rows; empty buckets are
    /// included with count 0 so plots keep their time axis.
    pub fn rows(&self) -> Vec<(SimTime, f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let start = SimTime::from_micros(i as u64 * self.bucket.as_micros());
                (start, w.mean(), w.count())
            })
            .collect()
    }

    /// Mean within the bucket containing `at` (`None` when empty).
    pub fn mean_at(&self, at: SimTime) -> Option<f64> {
        let idx = self.index(at);
        self.buckets.get(idx).filter(|w| w.count() > 0).map(Welford::mean)
    }

    /// Characterize the dip a disturbance at `spike_at` carved into
    /// this series: the pre-spike baseline (mean of non-empty bucket
    /// means strictly before the spike's bucket), the post-spike
    /// trough, the dip depth, and how long the series took to climb
    /// back within `tolerance` of the baseline. Use this for metrics
    /// where the disturbance pushes the value *down* (continuity,
    /// on-time ratio); see [`TimeSeries::spike_report`] for metrics it
    /// pushes *up*.
    pub fn dip_report(&self, spike_at: SimTime, tolerance: f64) -> DipReport {
        self.excursion_report(spike_at, tolerance, 1.0)
    }

    /// Mirror of [`TimeSeries::dip_report`] for metrics a disturbance
    /// pushes *up* (latency): the pre-spike baseline, the post-spike
    /// peak, the spike height, and how long the series took to settle
    /// back within `tolerance` above the baseline. The flash-crowd
    /// experiments use this on interaction latency — the paper's
    /// headline QoE metric — to compare the predictive prefetch plane
    /// against the purely reactive model.
    pub fn spike_report(&self, spike_at: SimTime, tolerance: f64) -> SpikeReport {
        let d = self.excursion_report(spike_at, tolerance, -1.0);
        SpikeReport {
            baseline: -d.baseline,
            peak: -d.trough,
            spike_height: d.dip_depth,
            recovery: d.recovery,
        }
    }

    /// Shared excursion analysis: with `sign = 1` the excursion of
    /// interest is downward; with `sign = -1` the series is negated so
    /// an upward excursion becomes the dip.
    fn excursion_report(&self, spike_at: SimTime, tolerance: f64, sign: f64) -> DipReport {
        let spike_idx = self.index(spike_at);
        let rows = self.rows();
        let pre: Vec<f64> = rows
            .iter()
            .take(spike_idx)
            .filter(|(_, _, count)| *count > 0)
            .map(|(_, mean, _)| sign * *mean)
            .collect();
        let baseline =
            if pre.is_empty() { 0.0 } else { pre.iter().sum::<f64>() / pre.len() as f64 };
        let post: Vec<(SimTime, f64)> = rows
            .iter()
            .skip(spike_idx)
            .filter(|(_, _, count)| *count > 0)
            .map(|(start, mean, _)| (*start, sign * *mean))
            .collect();
        let trough = post.iter().map(|(_, mean)| *mean).fold(f64::INFINITY, f64::min);
        let trough = if trough.is_finite() { trough } else { baseline };
        let dip_depth = (baseline - trough).max(0.0);
        // Recovery: the first post-trough bucket back within tolerance
        // of the baseline, measured from the spike to that bucket's
        // end. Zero when the series never meaningfully dipped.
        let recovery = if dip_depth <= tolerance {
            Some(SimDuration::ZERO)
        } else {
            let trough_at = post
                .iter()
                .find(|(_, mean)| (*mean - trough).abs() < 1e-12)
                .map(|(start, _)| *start)
                .unwrap_or(spike_at);
            post.iter()
                .filter(|(start, _)| *start >= trough_at)
                .find(|(_, mean)| *mean >= baseline - tolerance)
                .map(|(start, _)| (*start + self.bucket) - spike_at)
        };
        DipReport { baseline, trough, dip_depth, recovery }
    }
}

/// What a disturbance did to a [`TimeSeries`] — see
/// [`TimeSeries::dip_report`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DipReport {
    /// Mean of non-empty bucket means before the spike.
    pub baseline: f64,
    /// Lowest non-empty bucket mean at or after the spike.
    pub trough: f64,
    /// `max(0, baseline − trough)`.
    pub dip_depth: f64,
    /// Time from the spike until the series climbed back within
    /// tolerance of the baseline (bucket-end resolution). `ZERO` when
    /// it never meaningfully dipped; `None` when it never recovered
    /// inside the recorded window.
    pub recovery: Option<SimDuration>,
}

impl DipReport {
    /// Recovery in seconds, with `never` (e.g. the horizon) standing
    /// in when the series never climbed back.
    pub fn recovery_secs_or(&self, never: f64) -> f64 {
        self.recovery.map_or(never, |d| d.as_secs_f64())
    }
}

/// What a disturbance did to a [`TimeSeries`] whose failure direction
/// is *up* — see [`TimeSeries::spike_report`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpikeReport {
    /// Mean of non-empty bucket means before the spike.
    pub baseline: f64,
    /// Highest non-empty bucket mean at or after the spike.
    pub peak: f64,
    /// `max(0, peak − baseline)`.
    pub spike_height: f64,
    /// Time from the spike until the series settled back within
    /// tolerance above the baseline (bucket-end resolution). `ZERO`
    /// when it never meaningfully spiked; `None` when it never settled
    /// inside the recorded window.
    pub recovery: Option<SimDuration>,
}

impl SpikeReport {
    /// Recovery in seconds, with `never` (e.g. the horizon) standing
    /// in when the series never settled back.
    pub fn recovery_secs_or(&self, never: f64) -> f64 {
        self.recovery.map_or(never, |d| d.as_secs_f64())
    }
}

/// Per-bucket event counts.
#[derive(Clone, Debug)]
pub struct CounterSeries {
    bucket: SimDuration,
    counts: Vec<u64>,
}

impl CounterSeries {
    /// A counter series with `bucket`-wide windows starting at t = 0.
    pub fn new(bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "zero-width buckets");
        CounterSeries { bucket, counts: Vec::new() }
    }

    /// Count one event at `at`.
    pub fn bump(&mut self, at: SimTime) {
        self.add(at, 1);
    }

    /// Count `n` events at `at`.
    pub fn add(&mut self, at: SimTime, n: u64) {
        let idx = (at.as_micros() / self.bucket.as_micros()) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
    }

    /// Per-bucket `(start_time, count)` rows.
    pub fn rows(&self) -> Vec<(SimTime, u64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (SimTime::from_micros(i as u64 * self.bucket.as_micros()), c))
            .collect()
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Peak bucket count.
    pub fn peak(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_the_right_buckets() {
        let mut s = TimeSeries::new(SimDuration::from_secs(10));
        s.record(SimTime::from_secs(1), 10.0);
        s.record(SimTime::from_secs(9), 20.0);
        s.record(SimTime::from_secs(25), 5.0);
        let rows = s.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].1, 15.0);
        assert_eq!(rows[0].2, 2);
        assert_eq!(rows[1].2, 0, "gap bucket present but empty");
        assert_eq!(rows[2].1, 5.0);
    }

    #[test]
    fn mean_at_queries() {
        let mut s = TimeSeries::new(SimDuration::from_secs(5));
        assert!(s.mean_at(SimTime::from_secs(2)).is_none());
        s.record(SimTime::from_secs(2), 4.0);
        s.record(SimTime::from_secs(3), 6.0);
        assert_eq!(s.mean_at(SimTime::from_secs(4)), Some(5.0));
        assert!(s.mean_at(SimTime::from_secs(7)).is_none());
    }

    #[test]
    fn bucket_boundaries_are_half_open() {
        let mut s = TimeSeries::new(SimDuration::from_secs(10));
        s.record(SimTime::from_secs(10), 1.0); // exactly on the edge → bucket 1
        let rows = s.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].2, 0);
        assert_eq!(rows[1].2, 1);
    }

    #[test]
    fn dip_report_measures_depth_and_recovery() {
        let mut s = TimeSeries::new(SimDuration::from_secs(10));
        // Baseline 0.9 for 3 buckets, crash to 0.5, climb back.
        for (secs, v) in
            [(5, 0.9), (15, 0.9), (25, 0.9), (35, 0.5), (45, 0.7), (55, 0.88), (65, 0.9)]
        {
            s.record(SimTime::from_secs(secs), v);
        }
        let d = s.dip_report(SimTime::from_secs(30), 0.05);
        assert!((d.baseline - 0.9).abs() < 1e-12);
        assert!((d.trough - 0.5).abs() < 1e-12);
        assert!((d.dip_depth - 0.4).abs() < 1e-12);
        // Recovered in the 50–60s bucket (0.88 ≥ 0.9 − 0.05): ends at
        // 60s, spike at 30s → 30s to recover.
        assert_eq!(d.recovery, Some(SimDuration::from_secs(30)));
    }

    #[test]
    fn dip_report_flat_series_has_zero_dip() {
        let mut s = TimeSeries::new(SimDuration::from_secs(10));
        for secs in [5u64, 15, 25, 35, 45] {
            s.record(SimTime::from_secs(secs), 0.8);
        }
        let d = s.dip_report(SimTime::from_secs(20), 0.02);
        assert_eq!(d.dip_depth, 0.0);
        assert_eq!(d.recovery, Some(SimDuration::ZERO));
    }

    #[test]
    fn spike_report_measures_height_and_settling() {
        let mut s = TimeSeries::new(SimDuration::from_secs(10));
        // Latency-shaped: baseline 80 ms, spike to 95, settle back.
        for (secs, v) in
            [(5, 80.0), (15, 80.0), (25, 80.0), (35, 95.0), (45, 88.0), (55, 81.0), (65, 80.0)]
        {
            s.record(SimTime::from_secs(secs), v);
        }
        let r = s.spike_report(SimTime::from_secs(30), 2.0);
        assert!((r.baseline - 80.0).abs() < 1e-12);
        assert!((r.peak - 95.0).abs() < 1e-12);
        assert!((r.spike_height - 15.0).abs() < 1e-12);
        // Settled in the 50–60s bucket (81 ≤ 80 + 2): ends at 60s,
        // spike at 30s → 30s to settle.
        assert_eq!(r.recovery, Some(SimDuration::from_secs(30)));
    }

    #[test]
    fn dip_report_unrecovered_series_reports_none() {
        let mut s = TimeSeries::new(SimDuration::from_secs(10));
        for (secs, v) in [(5, 0.9), (15, 0.9), (25, 0.4), (35, 0.45)] {
            s.record(SimTime::from_secs(secs), v);
        }
        let d = s.dip_report(SimTime::from_secs(20), 0.05);
        assert!((d.dip_depth - 0.5).abs() < 1e-12);
        assert_eq!(d.recovery, None);
        assert_eq!(d.recovery_secs_or(99.0), 99.0);
    }

    #[test]
    fn counter_series_accumulates() {
        let mut c = CounterSeries::new(SimDuration::from_secs(1));
        for ms in [100u64, 200, 1500, 1600, 1700] {
            c.bump(SimTime::from_millis(ms));
        }
        c.add(SimTime::from_millis(2_500), 10);
        let rows = c.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].1, 2);
        assert_eq!(rows[1].1, 3);
        assert_eq!(rows[2].1, 10);
        assert_eq!(c.total(), 15);
        assert_eq!(c.peak(), 10);
    }
}
