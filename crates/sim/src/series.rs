//! Time-bucketed series recording.
//!
//! Experiments often want a metric *over time* — continuity per
//! 10-second window during a flash crowd, queue depth as churn hits —
//! not just an end-of-run aggregate. [`TimeSeries`] accumulates
//! observations into fixed-width buckets of simulated time and
//! exposes per-bucket means/counts; [`CounterSeries`] does the same
//! for event counts.

use crate::stats::Welford;
use crate::time::{SimDuration, SimTime};

/// Per-bucket mean/min/max of a sampled metric.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    bucket: SimDuration,
    buckets: Vec<Welford>,
}

impl TimeSeries {
    /// A series with `bucket`-wide windows starting at t = 0.
    pub fn new(bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "zero-width buckets");
        TimeSeries { bucket, buckets: Vec::new() }
    }

    fn index(&self, at: SimTime) -> usize {
        (at.as_micros() / self.bucket.as_micros()) as usize
    }

    /// Record `value` observed at `at`.
    pub fn record(&mut self, at: SimTime, value: f64) {
        let idx = self.index(at);
        if idx >= self.buckets.len() {
            self.buckets.resize_with(idx + 1, Welford::new);
        }
        self.buckets[idx].push(value);
    }

    /// Bucket width.
    pub fn bucket_width(&self) -> SimDuration {
        self.bucket
    }

    /// Number of buckets touched (including empty gaps).
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Per-bucket `(start_time, mean, count)` rows; empty buckets are
    /// included with count 0 so plots keep their time axis.
    pub fn rows(&self) -> Vec<(SimTime, f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let start = SimTime::from_micros(i as u64 * self.bucket.as_micros());
                (start, w.mean(), w.count())
            })
            .collect()
    }

    /// Mean within the bucket containing `at` (`None` when empty).
    pub fn mean_at(&self, at: SimTime) -> Option<f64> {
        let idx = self.index(at);
        self.buckets.get(idx).filter(|w| w.count() > 0).map(Welford::mean)
    }
}

/// Per-bucket event counts.
#[derive(Clone, Debug)]
pub struct CounterSeries {
    bucket: SimDuration,
    counts: Vec<u64>,
}

impl CounterSeries {
    /// A counter series with `bucket`-wide windows starting at t = 0.
    pub fn new(bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "zero-width buckets");
        CounterSeries { bucket, counts: Vec::new() }
    }

    /// Count one event at `at`.
    pub fn bump(&mut self, at: SimTime) {
        self.add(at, 1);
    }

    /// Count `n` events at `at`.
    pub fn add(&mut self, at: SimTime, n: u64) {
        let idx = (at.as_micros() / self.bucket.as_micros()) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
    }

    /// Per-bucket `(start_time, count)` rows.
    pub fn rows(&self) -> Vec<(SimTime, u64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (SimTime::from_micros(i as u64 * self.bucket.as_micros()), c))
            .collect()
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Peak bucket count.
    pub fn peak(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_the_right_buckets() {
        let mut s = TimeSeries::new(SimDuration::from_secs(10));
        s.record(SimTime::from_secs(1), 10.0);
        s.record(SimTime::from_secs(9), 20.0);
        s.record(SimTime::from_secs(25), 5.0);
        let rows = s.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].1, 15.0);
        assert_eq!(rows[0].2, 2);
        assert_eq!(rows[1].2, 0, "gap bucket present but empty");
        assert_eq!(rows[2].1, 5.0);
    }

    #[test]
    fn mean_at_queries() {
        let mut s = TimeSeries::new(SimDuration::from_secs(5));
        assert!(s.mean_at(SimTime::from_secs(2)).is_none());
        s.record(SimTime::from_secs(2), 4.0);
        s.record(SimTime::from_secs(3), 6.0);
        assert_eq!(s.mean_at(SimTime::from_secs(4)), Some(5.0));
        assert!(s.mean_at(SimTime::from_secs(7)).is_none());
    }

    #[test]
    fn bucket_boundaries_are_half_open() {
        let mut s = TimeSeries::new(SimDuration::from_secs(10));
        s.record(SimTime::from_secs(10), 1.0); // exactly on the edge → bucket 1
        let rows = s.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].2, 0);
        assert_eq!(rows[1].2, 1);
    }

    #[test]
    fn counter_series_accumulates() {
        let mut c = CounterSeries::new(SimDuration::from_secs(1));
        for ms in [100u64, 200, 1500, 1600, 1700] {
            c.bump(SimTime::from_millis(ms));
        }
        c.add(SimTime::from_millis(2_500), 10);
        let rows = c.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].1, 2);
        assert_eq!(rows[1].1, 3);
        assert_eq!(rows[2].1, 10);
        assert_eq!(c.total(), 15);
        assert_eq!(c.peak(), 10);
    }
}
