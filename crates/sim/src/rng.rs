//! Deterministic pseudo-random number generation and the distributions
//! used by the CloudFog evaluation.
//!
//! Everything in the workload is sampled from a seeded generator so that
//! an experiment is reproducible bit-for-bit from its `u64` seed. The
//! generator is xoshiro256** (Blackman & Vigna), seeded through
//! SplitMix64 as its authors recommend; both are implemented here (they
//! are ~20 lines each) so the repository has no behavioural dependency
//! on an external RNG crate version.
//!
//! Distributions implemented (with the paper's parameters as defaults
//! elsewhere):
//! * uniform (`f64`, integer ranges),
//! * Bernoulli,
//! * exponential — Poisson-process inter-arrival times (§IV: joins at
//!   5 players/s),
//! * Poisson counts,
//! * Pareto — node capacities (mean 5, shape α = 1 in §IV),
//! * bounded Zipf / power-law — friend counts (skew 0.5 in §IV),
//! * normal and log-normal — latency jitter in `cloudfog-net`.

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** — a small, fast, high-quality non-cryptographic PRNG.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second normal variate from the last Box–Muller draw.
    spare_normal: Option<f64>,
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    ///
    /// The full 256-bit state is expanded from the seed with SplitMix64,
    /// which guarantees a non-zero state for every seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng { s, spare_normal: None }
    }

    /// Derive an independent child generator. Used to give each
    /// simulation component its own stream so that adding draws in one
    /// component does not perturb another.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `(0, 1]`; safe to feed into `ln()`.
    #[inline]
    pub fn f64_open(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's multiply-shift
    /// rejection method (unbiased). `n` must be non-zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        // Widening multiply; rejection keeps the result exactly uniform.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform index into a slice of length `len`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential variate with the given rate (events per unit time).
    /// This is the inter-arrival time of a Poisson process of that rate.
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        -self.f64_open().ln() / rate
    }

    /// Poisson-distributed count with the given mean, via Knuth's
    /// product method for small means and a normal approximation with
    /// continuity correction for large means (mean > 64).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        debug_assert!(mean >= 0.0);
        if mean == 0.0 {
            return 0;
        }
        if mean > 64.0 {
            let x = self.normal(mean, mean.sqrt());
            return x.max(0.0).round() as u64;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64_open();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Pareto variate with scale `x_min > 0` and shape `alpha > 0`
    /// (classic Type-I Pareto: support `[x_min, ∞)`).
    #[inline]
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        debug_assert!(x_min > 0.0 && alpha > 0.0);
        x_min / self.f64_open().powf(1.0 / alpha)
    }

    /// Bounded Zipf sample over ranks `1..=n` with exponent `skew`,
    /// via inverse-CDF on the generalized harmonic weights. O(n) per
    /// call in the worst case but typically called with small `n`
    /// (e.g. friend counts); for hot paths precompute with
    /// [`ZipfTable`].
    pub fn zipf(&mut self, n: u64, skew: f64) -> u64 {
        debug_assert!(n > 0);
        let h: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(skew)).sum();
        let mut u = self.f64() * h;
        for k in 1..=n {
            u -= 1.0 / (k as f64).powf(skew);
            if u <= 0.0 {
                return k;
            }
        }
        n
    }

    /// Standard normal variate (Box–Muller, with caching of the second
    /// variate of each pair).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        let u1 = self.f64_open();
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal variate with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0);
        mean + std_dev * self.standard_normal()
    }

    /// Log-normal variate: `exp(N(mu, sigma))` where `mu`/`sigma`
    /// parameterize the underlying normal.
    #[inline]
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..len` (reservoir when
    /// `k < len`, identity otherwise). Order of the result is not
    /// specified but is deterministic for a given state.
    pub fn sample_indices(&mut self, len: usize, k: usize) -> Vec<usize> {
        if k >= len {
            return (0..len).collect();
        }
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..len {
            let j = self.index(i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir
    }
}

/// Precomputed cumulative weights for repeated bounded-Zipf sampling.
///
/// Sampling is O(log n) by binary search on the CDF; building is O(n).
#[derive(Clone, Debug)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Build the table for ranks `1..=n` with exponent `skew`.
    pub fn new(n: u64, skew: f64) -> Self {
        assert!(n > 0, "ZipfTable over empty support");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(skew);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfTable { cdf }
    }

    /// Number of ranks in the support.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True iff the support is empty (never: the constructor rejects it).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `1..=n`.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.f64();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => (i.min(self.cdf.len() - 1) + 1) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(samples: &[f64]) -> f64 {
        samples.iter().sum::<f64>() / samples.len() as f64
    }

    #[test]
    fn determinism_from_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn fork_streams_are_decoupled() {
        let mut parent1 = Rng::new(7);
        let child1: Vec<u64> = {
            let mut c = parent1.fork();
            (0..8).map(|_| c.next_u64()).collect()
        };
        // Re-derive: same parent state gives the same child stream.
        let mut parent2 = Rng::new(7);
        let child2: Vec<u64> = {
            let mut c = parent2.fork();
            (0..8).map(|_| c.next_u64()).collect()
        };
        assert_eq!(child1, child2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(1);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = Rng::new(2);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.below(10) as usize] += 1;
        }
        for &c in &counts {
            // Each bin expects 10 000; allow ±6 sigma.
            assert!((c as i64 - 10_000).abs() < 600, "bin count {c}");
        }
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = Rng::new(3);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.exponential(5.0)).collect();
        let m = mean_of(&samples);
        assert!((m - 0.2).abs() < 0.01, "mean {m}");
    }

    #[test]
    fn poisson_mean_matches() {
        let mut rng = Rng::new(4);
        for &mean in &[0.5, 3.0, 20.0, 100.0] {
            let samples: Vec<f64> = (0..20_000).map(|_| rng.poisson(mean) as f64).collect();
            let m = mean_of(&samples);
            assert!((m - mean).abs() < mean.max(1.0) * 0.05, "mean {m} vs {mean}");
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn pareto_respects_scale_and_median() {
        let mut rng = Rng::new(5);
        // alpha=1 has infinite mean; check support and median = x_min * 2^(1/alpha).
        let samples: Vec<f64> = (0..50_001).map(|_| rng.pareto(2.5, 1.0)).collect();
        assert!(samples.iter().all(|&x| x >= 2.5));
        let mut s = samples;
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = s[s.len() / 2];
        assert!((median - 5.0).abs() < 0.25, "median {median}");
    }

    #[test]
    fn zipf_is_skewed_and_bounded() {
        let mut rng = Rng::new(6);
        let mut counts = [0u32; 20];
        for _ in 0..50_000 {
            let k = rng.zipf(20, 0.5);
            assert!((1..=20).contains(&k));
            counts[(k - 1) as usize] += 1;
        }
        assert!(counts[0] > counts[9], "rank 1 should beat rank 10");
        assert!(counts[0] > counts[19] * 2);
    }

    #[test]
    fn zipf_table_matches_direct_distribution() {
        let table = ZipfTable::new(50, 0.5);
        assert_eq!(table.len(), 50);
        let mut rng = Rng::new(7);
        let mut counts = [0u32; 50];
        for _ in 0..50_000 {
            let k = table.sample(&mut rng);
            assert!((1..=50).contains(&k));
            counts[(k - 1) as usize] += 1;
        }
        assert!(counts[0] > counts[24]);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(8);
        let samples: Vec<f64> = (0..100_000).map(|_| rng.normal(10.0, 2.0)).collect();
        let m = mean_of(&samples);
        let var = samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / samples.len() as f64;
        assert!((m - 10.0).abs() < 0.05, "mean {m}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = Rng::new(9);
        for _ in 0..10_000 {
            assert!(rng.log_normal(0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(10);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = Rng::new(11);
        let picked = rng.sample_indices(1000, 50);
        assert_eq!(picked.len(), 50);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
        assert!(sorted.iter().all(|&i| i < 1000));
        // k >= len returns everything.
        assert_eq!(rng.sample_indices(5, 9), vec![0, 1, 2, 3, 4]);
    }
}
