//! Causal segment tracing: lifecycle spans, decision provenance and
//! per-component latency attribution.
//!
//! The paper's central quantity is *per-segment*: response latency
//! decomposes as `L_r = l_r + l_s + l_q + l_t + l_p` (Eq. 12), rate
//! adaptation reacts to buffer occupancy (Eqs. 7–11) and deadline
//! misses trigger proportional packet drops (Eq. 14). Aggregate
//! histograms cannot answer *why this segment missed its deadline* or
//! *which component dominates the p99 tail* — this module can.
//!
//! Three pieces, all recorded copy-only in sim time (no RNG draws, no
//! feedback into the simulation) so recording is provably invisible to
//! the run:
//!
//! * **Lifecycle spans** — a [`SegmentTrace`] per segment, keyed by
//!   the run-globally-unique segment id, stamping each [`Stage`] of
//!   the pipeline (action → encoded → enqueued → tx start → first
//!   packet → delivered) plus the terminal [`Outcome`].
//! * **Decision provenance** — an [`AdaptProvenance`] record for every
//!   quality switch (the rate estimate and consecutive-estimation
//!   counters that triggered it) and a [`DropProvenance`] record for
//!   every scheduler rebalance (deadline slack, the drop demand `D_i`
//!   and the per-victim spread weights `tolerance × φ`, Eq. 14).
//! * **Attribution** — finished traces fold into per-component
//!   histograms; [`CausalReport`] exposes p50/p95/p99 per component,
//!   mean shares, and a tail-attribution table naming the dominant
//!   component among segments above the p99 total latency.
//!
//! Exports are deterministic: JSONL with fixed key order via
//! [`CausalReport::to_jsonl`], and Chrome `trace_event` JSON via
//! [`CausalReport::chrome_trace_json`] — load the latter in Perfetto
//! (`ui.perfetto.dev`) to scrub through individual segment lifetimes.

use std::collections::BTreeMap;

use crate::stats::Histogram;
use crate::telemetry::{json_escape, json_f64, Quantiles, TelemetryConfig};
use crate::time::{SimDuration, SimTime};

/// The five latency components of Eq. 12, in paper order.
pub const COMPONENTS: [&str; 5] = ["l_r", "l_s", "l_q", "l_t", "l_p"];

/// A lifecycle stage of one segment, in pipeline order.
///
/// Consecutive stamps delimit the Eq. 12 components: `l_s` spans
/// `Action → Encoded` (cloud compute + render/encode — charged to the
/// playout budget, not the reported network latency), `l_r` spans
/// `Encoded → Enqueued` (state multicast and delivery to the sender),
/// `l_q` spans `Enqueued → TxStart` (sender-buffer queue wait) and
/// `TxStart → Delivered` splits into transmission `l_t` and
/// propagation `l_p`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Stage {
    /// Player input arrives at the authoritative cloud.
    Action = 0,
    /// Rendered and encoded; the response enters the network. The
    /// simulation measures reported latency from this instant.
    Encoded = 1,
    /// Accepted into the sender's deadline-driven buffer.
    Enqueued = 2,
    /// Popped from the buffer; uplink transmission begins.
    TxStart = 3,
    /// First packet reaches the player.
    FirstPacket = 4,
    /// Last packet reaches the player; the segment is graded.
    Delivered = 5,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 6;
    /// All stages in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Action,
        Stage::Encoded,
        Stage::Enqueued,
        Stage::TxStart,
        Stage::FirstPacket,
        Stage::Delivered,
    ];

    /// Stable snake_case label used in every export.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Action => "action",
            Stage::Encoded => "encoded",
            Stage::Enqueued => "enqueued",
            Stage::TxStart => "tx_start",
            Stage::FirstPacket => "first_packet",
            Stage::Delivered => "delivered",
        }
    }
}

/// How a segment's life ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Delivered at or before its playback deadline.
    OnTime,
    /// Delivered, but after the deadline.
    Late,
    /// Skipped by the sender's staleness guard without transmission.
    Skipped,
    /// Charged as lost (dead sender, no recovery before grading).
    Lost,
    /// The player left before the segment reached them.
    Evaporated,
}

impl Outcome {
    /// Stable snake_case label used in every export.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::OnTime => "on_time",
            Outcome::Late => "late",
            Outcome::Skipped => "skipped",
            Outcome::Lost => "lost",
            Outcome::Evaporated => "evaporated",
        }
    }
}

/// The full causal record of one segment's life.
#[derive(Clone, Debug, PartialEq)]
pub struct SegmentTrace {
    /// Run-globally-unique trace id (the segment id) — the stable join
    /// key across JSONL exports.
    pub trace: u64,
    /// Destination player.
    pub player: u64,
    /// Game the player is in.
    pub game: u16,
    /// Encoding quality level at generation time.
    pub quality: u8,
    /// Stage stamps (µs); `None` until the stage is reached.
    pub stages: [Option<SimTime>; Stage::COUNT],
    /// Playback deadline (encoded instant + latency requirement).
    pub deadline: SimTime,
    /// One-way propagation of the delivery path (µs).
    pub propagation_us: u64,
    /// Packets in the encoded segment.
    pub packets: u32,
    /// Packets dropped by scheduler rebalances (Eq. 14).
    pub sched_dropped: u32,
    /// Packets lost on the wire (chaos burst loss).
    pub wire_lost: u32,
    /// Terminal outcome (`None` while in flight).
    pub outcome: Option<Outcome>,
    /// When the outcome was decided.
    pub graded_at: SimTime,
    /// Whether the segment was graded inside the measurement window.
    pub measured: bool,
}

impl SegmentTrace {
    #[allow(clippy::too_many_arguments)] // mirrors CausalLog::begin
    fn new(
        trace: u64,
        player: u64,
        game: u16,
        quality: u8,
        action: SimTime,
        encoded: SimTime,
        deadline: SimTime,
        packets: u32,
    ) -> Self {
        let mut stages = [None; Stage::COUNT];
        stages[Stage::Action as usize] = Some(action);
        stages[Stage::Encoded as usize] = Some(encoded);
        SegmentTrace {
            trace,
            player,
            game,
            quality,
            stages,
            deadline,
            propagation_us: 0,
            packets,
            sched_dropped: 0,
            wire_lost: 0,
            outcome: None,
            graded_at: SimTime::ZERO,
            measured: false,
        }
    }

    /// Stamp for one stage, if reached.
    pub fn stage(&self, stage: Stage) -> Option<SimTime> {
        self.stages[stage as usize]
    }

    /// The Eq. 12 component breakdown `[l_r, l_s, l_q, l_t, l_p]` in
    /// milliseconds — `Some` only for segments that completed the
    /// delivery pipeline (outcome on-time or late).
    pub fn components_ms(&self) -> Option<[f64; 5]> {
        let action = self.stage(Stage::Action)?;
        let encoded = self.stage(Stage::Encoded)?;
        let enqueued = self.stage(Stage::Enqueued)?;
        let tx = self.stage(Stage::TxStart)?;
        let delivered = self.stage(Stage::Delivered)?;
        let l_p = self.propagation_us as f64 / 1_000.0;
        let l_t = (delivered.saturating_since(tx).as_millis_f64() - l_p).max(0.0);
        Some([
            enqueued.saturating_since(encoded).as_millis_f64(),
            encoded.saturating_since(action).as_millis_f64(),
            tx.saturating_since(enqueued).as_millis_f64(),
            l_t,
            l_p,
        ])
    }

    /// Reported response latency in ms (`Delivered − Encoded`), the
    /// quantity the simulation's latency histograms record. Equals
    /// `l_r + l_q + l_t + l_p`; `l_s` is charged to the playout budget.
    pub fn latency_ms(&self) -> Option<f64> {
        let encoded = self.stage(Stage::Encoded)?;
        let delivered = self.stage(Stage::Delivered)?;
        Some(delivered.saturating_since(encoded).as_millis_f64())
    }

    /// The dominant (largest) Eq. 12 component, once delivered.
    pub fn dominant_component(&self) -> Option<&'static str> {
        let comps = self.components_ms()?;
        Some(COMPONENTS[argmax(&comps)])
    }

    /// Deterministic single-line JSON record.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str(&format!(
            "{{\"trace\":{},\"player\":{},\"game\":{},\"quality\":{}",
            self.trace, self.player, self.game, self.quality
        ));
        for stage in Stage::ALL {
            match self.stage(stage) {
                Some(at) => s.push_str(&format!(",\"{}_us\":{}", stage.label(), at.as_micros())),
                None => s.push_str(&format!(",\"{}_us\":null", stage.label())),
            }
        }
        s.push_str(&format!(
            ",\"deadline_us\":{},\"propagation_us\":{},\"packets\":{}",
            self.deadline.as_micros(),
            self.propagation_us,
            self.packets
        ));
        s.push_str(&format!(
            ",\"sched_dropped\":{},\"wire_lost\":{}",
            self.sched_dropped, self.wire_lost
        ));
        match self.outcome {
            Some(o) => s.push_str(&format!(",\"outcome\":\"{}\"", o.label())),
            None => s.push_str(",\"outcome\":null"),
        }
        s.push_str(&format!(
            ",\"graded_us\":{},\"measured\":{}",
            self.graded_at.as_micros(),
            self.measured
        ));
        if let Some(c) = self.components_ms() {
            for (name, v) in COMPONENTS.iter().zip(c) {
                s.push_str(&format!(",\"{}_ms\":{}", name, json_f64(v)));
            }
        }
        s.push('}');
        s
    }
}

/// Why one quality switch happened (Eqs. 7–11).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptProvenance {
    /// When the switch fired.
    pub at: SimTime,
    /// The adapting player.
    pub player: u64,
    /// Quality level before the switch.
    pub from_level: u8,
    /// Quality level after the switch.
    pub to_level: u8,
    /// Buffer-derived rate estimate `r` at the trigger.
    pub r: f64,
    /// Up-switch threshold `(1 + β)/ρ`.
    pub up_threshold: f64,
    /// Down-switch threshold `θ/ρ`.
    pub down_threshold: f64,
    /// Consecutive estimations beyond the threshold when it fired.
    pub run: u32,
    /// Whether this was the stability up-probe rather than a
    /// threshold-run switch.
    pub probe: bool,
    /// Which policy input drove the switch (arena policies name their
    /// driver, e.g. `"throughput.ewma"`). `None` means the paper's
    /// buffer controller — read it as `"buffer.r"`, or `"probe.stable"`
    /// when `probe` is set. Omitted from the JSON record when `None` so
    /// default-policy causal logs stay byte-identical across the arena
    /// refactor.
    pub driver: Option<&'static str>,
}

impl AdaptProvenance {
    /// The driver label with the `None` convention resolved: what drove
    /// this switch, never empty.
    pub fn driver_label(&self) -> &'static str {
        self.driver.unwrap_or(if self.probe { "probe.stable" } else { "buffer.r" })
    }

    /// Deterministic single-line JSON record.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"at_us\":{},\"player\":{},\"from\":{},\"to\":{},\"r\":{},\
             \"up_threshold\":{},\"down_threshold\":{},\"run\":{},\"probe\":{}",
            self.at.as_micros(),
            self.player,
            self.from_level,
            self.to_level,
            json_f64(self.r),
            json_f64(self.up_threshold),
            json_f64(self.down_threshold),
            self.run,
            self.probe
        );
        if let Some(driver) = self.driver {
            s.push_str(&format!(",\"driver\":\"{driver}\""));
        }
        s.push('}');
        s
    }
}

/// Why one join was admitted at its brownout level.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissionProvenance {
    /// When the join was admitted.
    pub at: SimTime,
    /// The joining player.
    pub player: u64,
    /// The player's region index.
    pub region: u8,
    /// Brownout level granted (0 normal, 1 degraded, 2 shed).
    pub level: u8,
    /// Regional fog utilization that drove the decision.
    pub utilization: f64,
}

impl AdmissionProvenance {
    /// Deterministic single-line JSON record.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"at_us\":{},\"player\":{},\"region\":{},\"level\":{},\"utilization\":{}}}",
            self.at.as_micros(),
            self.player,
            self.region,
            self.level,
            json_f64(self.utilization)
        )
    }
}

/// One victim's share of a scheduler rebalance (Eq. 14).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DropShare {
    /// Victim segment's trace id.
    pub trace: u64,
    /// The victim's loss tolerance `L̃_t`.
    pub tolerance: f64,
    /// Queue-wait decay `φ = e^{−λ·wait}` at rebalance time.
    pub phi: f64,
    /// Spread weight `tolerance × φ`.
    pub weight: f64,
    /// Packets actually dropped from this victim.
    pub dropped: u32,
}

impl DropShare {
    fn to_json(self) -> String {
        format!(
            "{{\"trace\":{},\"tolerance\":{},\"phi\":{},\"weight\":{},\"dropped\":{}}}",
            self.trace,
            json_f64(self.tolerance),
            json_f64(self.phi),
            json_f64(self.weight),
            self.dropped
        )
    }
}

/// Why one scheduler rebalance dropped packets (Eq. 14).
#[derive(Clone, Debug, PartialEq)]
pub struct DropProvenance {
    /// When the rebalance fired.
    pub at: SimTime,
    /// The newly enqueued segment whose predicted miss triggered it.
    pub trigger: u64,
    /// The triggering segment's player.
    pub player: u64,
    /// Predicted response latency of the trigger (ms).
    pub predicted_ms: f64,
    /// The trigger's latency requirement (ms); deadline slack is
    /// `required − predicted` (negative when a miss is predicted).
    pub required_ms: f64,
    /// Per-packet transmission benefit `σ` (ms).
    pub sigma_ms: f64,
    /// Drop demand `D_i = ⌈(predicted − required)/σ⌉`.
    pub demanded: u32,
    /// Packets actually dropped (≤ demanded: tolerance-capped).
    pub dropped: u32,
    /// Per-victim spread, in queue order up to the trigger.
    pub shares: Vec<DropShare>,
}

impl DropProvenance {
    /// Deterministic single-line JSON record.
    pub fn to_json(&self) -> String {
        let shares: Vec<String> = self.shares.iter().map(|s| s.to_json()).collect();
        format!(
            "{{\"at_us\":{},\"trigger\":{},\"player\":{},\"predicted_ms\":{},\
             \"required_ms\":{},\"sigma_ms\":{},\"demanded\":{},\"dropped\":{},\"shares\":[{}]}}",
            self.at.as_micros(),
            self.trigger,
            self.player,
            json_f64(self.predicted_ms),
            json_f64(self.required_ms),
            json_f64(self.sigma_ms),
            self.demanded,
            self.dropped,
            shares.join(",")
        )
    }
}

fn argmax(xs: &[f64; 5]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Per-component latency attribution folded from delivered traces.
#[derive(Clone, Debug)]
struct Attribution {
    comp: [Histogram; 5],
    sums: [f64; 5],
    total: Histogram,
    /// Reported (net) latency of traces whose dominant component is i.
    dominant: [Histogram; 5],
    folded: u64,
}

impl Attribution {
    fn new(cfg: &TelemetryConfig) -> Self {
        let h = || Histogram::new(cfg.latency_lo_ms, cfg.latency_hi_ms, cfg.latency_bins);
        Attribution {
            comp: [h(), h(), h(), h(), h()],
            sums: [0.0; 5],
            total: h(),
            dominant: [h(), h(), h(), h(), h()],
            folded: 0,
        }
    }

    fn fold(&mut self, comps: [f64; 5], net_latency_ms: f64) {
        for (i, &c) in comps.iter().enumerate() {
            self.comp[i].record(c);
            self.sums[i] += c;
        }
        self.total.record(net_latency_ms);
        self.dominant[argmax(&comps)].record(net_latency_ms);
        self.folded += 1;
    }
}

/// The in-run causal log: open traces, bounded finished tails and the
/// attribution fold. Lives inside the simulation's telemetry state —
/// absent entirely when telemetry is off.
#[derive(Clone, Debug)]
pub struct CausalLog {
    open: BTreeMap<u64, SegmentTrace>,
    tail: Vec<SegmentTrace>,
    tail_next: usize,
    tail_cap: usize,
    adapt: Vec<AdaptProvenance>,
    adapt_next: usize,
    drops: Vec<DropProvenance>,
    drops_next: usize,
    admission: Vec<AdmissionProvenance>,
    admission_next: usize,
    prov_cap: usize,
    measure_from: SimTime,
    attr: Attribution,
    started: u64,
    finished: u64,
    on_time: u64,
    late: u64,
    skipped: u64,
    lost: u64,
    evaporated: u64,
    adapt_events: u64,
    drop_events: u64,
    drop_packets: u64,
    admission_events: u64,
}

impl CausalLog {
    /// A fresh log sized from the telemetry config (`causal_tail`
    /// finished traces, `provenance_tail` records per decision kind).
    pub fn new(cfg: &TelemetryConfig) -> Self {
        CausalLog {
            open: BTreeMap::new(),
            tail: Vec::new(),
            tail_next: 0,
            tail_cap: cfg.causal_tail,
            adapt: Vec::new(),
            adapt_next: 0,
            drops: Vec::new(),
            drops_next: 0,
            admission: Vec::new(),
            admission_next: 0,
            prov_cap: cfg.provenance_tail,
            measure_from: SimTime::ZERO,
            attr: Attribution::new(cfg),
            started: 0,
            finished: 0,
            on_time: 0,
            late: 0,
            skipped: 0,
            lost: 0,
            evaporated: 0,
            adapt_events: 0,
            drop_events: 0,
            drop_packets: 0,
            admission_events: 0,
        }
    }

    /// Traces graded before `at` are excluded from attribution (they
    /// still appear in the finished tail, flagged unmeasured).
    pub fn set_measure_from(&mut self, at: SimTime) {
        self.measure_from = at;
    }

    /// Open a trace: the segment was generated at `action`, entered
    /// the network at `encoded`.
    #[allow(clippy::too_many_arguments)]
    pub fn begin(
        &mut self,
        trace: u64,
        player: u64,
        game: u16,
        quality: u8,
        action: SimTime,
        encoded: SimTime,
        deadline: SimTime,
        packets: u32,
    ) {
        self.started += 1;
        self.open.insert(
            trace,
            SegmentTrace::new(trace, player, game, quality, action, encoded, deadline, packets),
        );
    }

    /// Stamp a lifecycle stage on an open trace.
    pub fn stamp(&mut self, trace: u64, stage: Stage, at: SimTime) {
        if let Some(t) = self.open.get_mut(&trace) {
            t.stages[stage as usize] = Some(at);
        }
    }

    /// Record the delivery path's one-way propagation.
    pub fn set_propagation(&mut self, trace: u64, propagation: SimDuration) {
        if let Some(t) = self.open.get_mut(&trace) {
            t.propagation_us = propagation.as_micros();
        }
    }

    /// Credit scheduler-dropped packets (Eq. 14) to an open trace.
    pub fn add_sched_drop(&mut self, trace: u64, packets: u32) {
        if let Some(t) = self.open.get_mut(&trace) {
            t.sched_dropped += packets;
        }
    }

    /// Credit wire-lost packets (chaos burst loss) to an open trace.
    pub fn add_wire_loss(&mut self, trace: u64, packets: u32) {
        if let Some(t) = self.open.get_mut(&trace) {
            t.wire_lost += packets;
        }
    }

    /// Close a trace with its terminal outcome; delivered traces fold
    /// into the attribution when graded inside the measurement window.
    pub fn finish(&mut self, trace: u64, outcome: Outcome, at: SimTime) {
        let Some(mut t) = self.open.remove(&trace) else { return };
        t.outcome = Some(outcome);
        t.graded_at = at;
        t.measured = at >= self.measure_from;
        self.finished += 1;
        match outcome {
            Outcome::OnTime => self.on_time += 1,
            Outcome::Late => self.late += 1,
            Outcome::Skipped => self.skipped += 1,
            Outcome::Lost => self.lost += 1,
            Outcome::Evaporated => self.evaporated += 1,
        }
        if t.measured {
            if let (Some(comps), Some(net)) = (t.components_ms(), t.latency_ms()) {
                self.attr.fold(comps, net);
            }
        }
        push_ring(&mut self.tail, &mut self.tail_next, self.tail_cap, t);
    }

    /// Record why a quality switch happened.
    pub fn record_adapt(&mut self, rec: AdaptProvenance) {
        self.adapt_events += 1;
        push_ring(&mut self.adapt, &mut self.adapt_next, self.prov_cap, rec);
    }

    /// Record why a scheduler rebalance dropped packets. The packet
    /// counter is exact even after the tail ring evicts records.
    pub fn record_drop(&mut self, rec: DropProvenance) {
        self.drop_events += 1;
        self.drop_packets += u64::from(rec.dropped);
        push_ring(&mut self.drops, &mut self.drops_next, self.prov_cap, rec);
    }

    /// Record why a join landed at its brownout admission level.
    pub fn record_admission(&mut self, rec: AdmissionProvenance) {
        self.admission_events += 1;
        push_ring(&mut self.admission, &mut self.admission_next, self.prov_cap, rec);
    }

    /// Traces still open (in flight at the horizon).
    pub fn in_flight(&self) -> usize {
        self.open.len()
    }

    /// Total packets dropped across all recorded rebalances (exact,
    /// unaffected by tail eviction).
    pub fn drop_packets(&self) -> u64 {
        self.drop_packets
    }

    /// Cumulative per-component attributed latency sums (ms), indexed
    /// like [`COMPONENTS`] — the raw material for a cross-shard
    /// dominant-component fold.
    pub fn component_sums(&self) -> [f64; 5] {
        self.attr.sums
    }

    /// The Eq. 12 component with the largest cumulative attributed
    /// latency so far, straight off the running attribution fold —
    /// O(1), so the live plane can stamp alert provenance on every
    /// sampled tick. `None` until a measured trace has folded.
    pub fn dominant_component_so_far(&self) -> Option<&'static str> {
        (self.attr.folded > 0).then(|| COMPONENTS[argmax(&self.attr.sums)])
    }

    /// Fold the log into an immutable report for export.
    pub fn report(&self, run: &str) -> CausalReport {
        let mean_total: f64 = self.attr.sums.iter().sum();
        let components = COMPONENTS
            .iter()
            .zip(self.attr.comp.iter())
            .zip(self.attr.sums.iter())
            .map(|((&name, hist), &sum)| {
                let mean = if self.attr.folded > 0 { sum / self.attr.folded as f64 } else { 0.0 };
                ComponentBreakdown {
                    name,
                    mean_ms: mean,
                    share: if mean_total > 0.0 { sum / mean_total } else { 0.0 },
                    quantiles: Quantiles::from_histogram(hist),
                }
            })
            .collect();
        let total = Quantiles::from_histogram(&self.attr.total);
        let threshold = total.p99;
        let mut counts = [0u64; 5];
        for (i, hist) in self.attr.dominant.iter().enumerate() {
            let above = hist.count() as f64 * (1.0 - hist.fraction_le(threshold));
            counts[i] = above.round() as u64;
        }
        let tail_count: u64 = counts.iter().sum();
        let dominant = COMPONENTS[counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap_or(0)];
        CausalReport {
            run: run.to_string(),
            started: self.started,
            finished: self.finished,
            in_flight: self.open.len() as u64,
            folded: self.attr.folded,
            on_time: self.on_time,
            late: self.late,
            skipped: self.skipped,
            lost: self.lost,
            evaporated: self.evaporated,
            adapt_events: self.adapt_events,
            drop_events: self.drop_events,
            drop_packets: self.drop_packets,
            components,
            total,
            tail: TailAttribution { threshold_ms: threshold, tail_count, counts, dominant },
            traces: ring_chronological(&self.tail, self.tail_next),
            adapt: ring_chronological(&self.adapt, self.adapt_next),
            drops: ring_chronological(&self.drops, self.drops_next),
            admission_events: self.admission_events,
            admission: ring_chronological(&self.admission, self.admission_next),
        }
    }
}

fn push_ring<T>(buf: &mut Vec<T>, next: &mut usize, cap: usize, item: T) {
    if cap == 0 {
        return;
    }
    if buf.len() < cap {
        buf.push(item);
    } else {
        buf[*next] = item;
        *next = (*next + 1) % cap;
    }
}

fn ring_chronological<T: Clone>(buf: &[T], next: usize) -> Vec<T> {
    let mut out = Vec::with_capacity(buf.len());
    out.extend_from_slice(&buf[next..]);
    out.extend_from_slice(&buf[..next]);
    out
}

/// One component's row of the attribution table.
#[derive(Clone, Debug, PartialEq)]
pub struct ComponentBreakdown {
    /// Component name (`l_r` … `l_p`).
    pub name: &'static str,
    /// Mean over measured delivered segments (ms).
    pub mean_ms: f64,
    /// Share of the mean end-to-end sum (all five components).
    pub share: f64,
    /// Distribution summary.
    pub quantiles: Quantiles,
}

/// Which component dominates the worst segments.
#[derive(Clone, Debug, PartialEq)]
pub struct TailAttribution {
    /// p99 of reported (net) segment latency — the tail threshold.
    pub threshold_ms: f64,
    /// Segments above the threshold (histogram estimate).
    pub tail_count: u64,
    /// Of those, how many have each component as their largest
    /// (indexed like [`COMPONENTS`]).
    pub counts: [u64; 5],
    /// The component that dominates the most tail segments.
    pub dominant: &'static str,
}

/// Immutable, export-ready fold of a run's causal log.
#[derive(Clone, Debug, PartialEq)]
pub struct CausalReport {
    /// Run label (system under test).
    pub run: String,
    /// Traces opened.
    pub started: u64,
    /// Traces closed with an outcome.
    pub finished: u64,
    /// Traces still open at the horizon.
    pub in_flight: u64,
    /// Delivered traces folded into the attribution (measured window).
    pub folded: u64,
    /// Outcome count: delivered on time.
    pub on_time: u64,
    /// Outcome count: delivered late.
    pub late: u64,
    /// Outcome count: skipped by the staleness guard.
    pub skipped: u64,
    /// Outcome count: charged lost on a dead sender.
    pub lost: u64,
    /// Outcome count: player left first.
    pub evaporated: u64,
    /// Quality switches recorded.
    pub adapt_events: u64,
    /// Scheduler rebalances that dropped packets.
    pub drop_events: u64,
    /// Packets dropped across those rebalances (exact).
    pub drop_packets: u64,
    /// Per-component attribution rows in [`COMPONENTS`] order.
    pub components: Vec<ComponentBreakdown>,
    /// Reported (net) latency distribution over folded traces.
    pub total: Quantiles,
    /// Tail attribution at the p99 threshold.
    pub tail: TailAttribution,
    /// Most recent finished traces (ring tail, chronological).
    pub traces: Vec<SegmentTrace>,
    /// Most recent quality-switch provenance records.
    pub adapt: Vec<AdaptProvenance>,
    /// Most recent drop provenance records.
    pub drops: Vec<DropProvenance>,
    /// Brownout admission decisions recorded (exact, unaffected by
    /// ring eviction). Zero on fixed-cohort runs without churn.
    pub admission_events: u64,
    /// Most recent admission provenance records.
    pub admission: Vec<AdmissionProvenance>,
}

impl CausalReport {
    /// Deterministic JSONL export: one `summary` line, one line per
    /// component row, one `tail` line, then `trace` / `adapt` / `drop`
    /// record lines. Fixed key order — byte-identical across runs with
    /// the same seed.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "{{\"causal\":\"summary\",\"run\":\"{}\",\"started\":{},\"finished\":{},\
             \"in_flight\":{},\"folded\":{},\"on_time\":{},\"late\":{},\"skipped\":{},\
             \"lost\":{},\"evaporated\":{},\"adapt_events\":{},\"drop_events\":{},\
             \"drop_packets\":{}}}\n",
            json_escape(&self.run),
            self.started,
            self.finished,
            self.in_flight,
            self.folded,
            self.on_time,
            self.late,
            self.skipped,
            self.lost,
            self.evaporated,
            self.adapt_events,
            self.drop_events,
            self.drop_packets
        ));
        for c in &self.components {
            out.push_str(&format!(
                "{{\"causal\":\"component\",\"run\":\"{}\",\"name\":\"{}\",\"mean_ms\":{},\
                 \"share\":{},\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}\n",
                json_escape(&self.run),
                c.name,
                json_f64(c.mean_ms),
                json_f64(c.share),
                c.quantiles.count,
                json_f64(c.quantiles.p50),
                json_f64(c.quantiles.p95),
                json_f64(c.quantiles.p99),
                json_f64(c.quantiles.max)
            ));
        }
        let counts: Vec<String> = COMPONENTS
            .iter()
            .zip(self.tail.counts)
            .map(|(name, n)| format!("\"{name}\":{n}"))
            .collect();
        out.push_str(&format!(
            "{{\"causal\":\"tail\",\"run\":\"{}\",\"threshold_ms\":{},\"tail_count\":{},\
             \"dominant\":\"{}\",\"counts\":{{{}}}}}\n",
            json_escape(&self.run),
            json_f64(self.tail.threshold_ms),
            self.tail.tail_count,
            self.tail.dominant,
            counts.join(",")
        ));
        for t in &self.traces {
            out.push_str(&format!(
                "{{\"causal\":\"trace\",\"run\":\"{}\",\"record\":{}}}\n",
                json_escape(&self.run),
                t.to_json()
            ));
        }
        for a in &self.adapt {
            out.push_str(&format!(
                "{{\"causal\":\"adapt\",\"run\":\"{}\",\"record\":{}}}\n",
                json_escape(&self.run),
                a.to_json()
            ));
        }
        for d in &self.drops {
            out.push_str(&format!(
                "{{\"causal\":\"drop\",\"run\":\"{}\",\"record\":{}}}\n",
                json_escape(&self.run),
                d.to_json()
            ));
        }
        // Admission lines exist only when brownout admission ran, so
        // churn-off exports stay byte-identical to the pre-churn
        // format.
        if self.admission_events > 0 {
            out.push_str(&format!(
                "{{\"causal\":\"admission_summary\",\"run\":\"{}\",\"admission_events\":{}}}\n",
                json_escape(&self.run),
                self.admission_events
            ));
        }
        for a in &self.admission {
            out.push_str(&format!(
                "{{\"causal\":\"admission\",\"run\":\"{}\",\"record\":{}}}\n",
                json_escape(&self.run),
                a.to_json()
            ));
        }
        out
    }

    /// Deterministic merge of per-shard causal reports into one
    /// run-level report.
    ///
    /// `reports` must be in canonical shard order. Every counter sums
    /// exactly (outcomes, adapt/drop/admission events, tail counts —
    /// the tail's dominant component is re-derived from the summed
    /// counts). Record rings (`traces`, `adapt`, `drops`, `admission`)
    /// concatenate in shard order; because every shard allocates from
    /// a disjoint [`SegmentIdAlloc`](SegmentTrace) base, segment ids
    /// stay run-global join keys in the merged export. Distribution
    /// summaries (`components`, `total`) are count-weighted
    /// approximations: exact quantile merge needs the raw
    /// observations, so p50/p95/p99 are count-weighted means of the
    /// per-shard summaries while `min`/`max`/`count` merge exactly.
    pub fn merge_shards(run: &str, reports: &[&CausalReport]) -> CausalReport {
        let mut out = CausalReport {
            run: run.to_string(),
            started: 0,
            finished: 0,
            in_flight: 0,
            folded: 0,
            on_time: 0,
            late: 0,
            skipped: 0,
            lost: 0,
            evaporated: 0,
            adapt_events: 0,
            drop_events: 0,
            drop_packets: 0,
            components: COMPONENTS
                .iter()
                .map(|&name| ComponentBreakdown {
                    name,
                    mean_ms: 0.0,
                    share: 0.0,
                    quantiles: Quantiles::default(),
                })
                .collect(),
            total: Quantiles::default(),
            tail: TailAttribution {
                threshold_ms: 0.0,
                tail_count: 0,
                counts: [0; 5],
                dominant: COMPONENTS[0],
            },
            traces: Vec::new(),
            adapt: Vec::new(),
            drops: Vec::new(),
            admission_events: 0,
            admission: Vec::new(),
        };
        for r in reports {
            out.started += r.started;
            out.finished += r.finished;
            out.in_flight += r.in_flight;
            out.folded += r.folded;
            out.on_time += r.on_time;
            out.late += r.late;
            out.skipped += r.skipped;
            out.lost += r.lost;
            out.evaporated += r.evaporated;
            out.adapt_events += r.adapt_events;
            out.drop_events += r.drop_events;
            out.drop_packets += r.drop_packets;
            out.admission_events += r.admission_events;
            out.tail.tail_count += r.tail.tail_count;
            for (sum, c) in out.tail.counts.iter_mut().zip(r.tail.counts) {
                *sum += c;
            }
            out.tail.threshold_ms = out.tail.threshold_ms.max(r.tail.threshold_ms);
            out.traces.extend(r.traces.iter().cloned());
            out.adapt.extend(r.adapt.iter().cloned());
            out.drops.extend(r.drops.iter().cloned());
            out.admission.extend(r.admission.iter().cloned());
        }
        out.tail.dominant = COMPONENTS[out
            .tail
            .counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, c)| (*c, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .unwrap_or(0)];
        for (i, slot) in out.components.iter_mut().enumerate() {
            *slot =
                merge_quantile_rows(slot.name, reports.iter().filter_map(|r| r.components.get(i)));
        }
        let mean_sum: f64 = out.components.iter().map(|c| c.mean_ms).sum();
        if mean_sum > 0.0 {
            for c in out.components.iter_mut() {
                c.share = c.mean_ms / mean_sum;
            }
        }
        out.total = merge_quantiles(reports.iter().map(|r| &r.total));
        out
    }

    /// Which policy input drove the most quality switches, over the
    /// retained [`CausalReport::adapt`] ring: `(driver label, count)`.
    /// `None` when no switches were retained. Legacy records without an
    /// explicit driver resolve through
    /// [`AdaptProvenance::driver_label`], so paper-controller runs
    /// report `"buffer.r"` / `"probe.stable"` here.
    pub fn dominant_switch_driver(&self) -> Option<(&'static str, u64)> {
        let mut counts: Vec<(&'static str, u64)> = Vec::new();
        for a in &self.adapt {
            let label = a.driver_label();
            match counts.iter_mut().find(|(l, _)| *l == label) {
                Some((_, n)) => *n += 1,
                None => counts.push((label, 1)),
            }
        }
        // Ties break toward the first driver observed — deterministic
        // because the ring is chronological.
        let mut best: Option<(&'static str, u64)> = None;
        for (label, n) in counts {
            if best.is_none_or(|(_, m)| n > m) {
                best = Some((label, n));
            }
        }
        best
    }

    /// Chrome `trace_event` JSON (the object form), loadable in
    /// Perfetto. Each retained trace renders its Eq. 12 components as
    /// complete (`"X"`) slices — `pid` is the player, `tid` the trace
    /// id — and every provenance record renders as an instant event.
    pub fn chrome_trace_json(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        for t in &self.traces {
            let slice = |name: &str, from: SimTime, to: SimTime, extra: &str| {
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"segment\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":{},\"tid\":{},\"args\":{{\"trace\":{},\"quality\":{}{}}}}}",
                    name,
                    from.as_micros(),
                    to.saturating_since(from).as_micros(),
                    t.player,
                    t.trace,
                    t.trace,
                    t.quality,
                    extra
                )
            };
            // Consecutive stage pairs present on the trace become
            // component slices; partially-lived segments render the
            // stages they reached.
            let pairs: [(&str, Stage, Stage); 4] = [
                ("l_s", Stage::Action, Stage::Encoded),
                ("l_r", Stage::Encoded, Stage::Enqueued),
                ("l_q", Stage::Enqueued, Stage::TxStart),
                ("l_t", Stage::TxStart, Stage::Delivered),
            ];
            for (name, a, b) in pairs {
                if let (Some(from), Some(to)) = (t.stage(a), t.stage(b)) {
                    if name == "l_t" {
                        // Split the wire leg into serialization and
                        // propagation at the recorded one-way delay.
                        let split = SimTime::from_micros(
                            to.as_micros() - t.propagation_us.min(to.as_micros()),
                        );
                        events.push(slice("l_t", from, split, ""));
                        events.push(slice("l_p", split, to, ""));
                    } else {
                        events.push(slice(name, from, to, ""));
                    }
                }
            }
            if let Some(outcome) = t.outcome {
                if !matches!(outcome, Outcome::OnTime | Outcome::Late) {
                    events.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"outcome\",\"ph\":\"i\",\"ts\":{},\
                         \"pid\":{},\"tid\":{},\"s\":\"t\",\"args\":{{\"trace\":{}}}}}",
                        outcome.label(),
                        t.graded_at.as_micros(),
                        t.player,
                        t.trace,
                        t.trace
                    ));
                }
            }
        }
        for a in &self.adapt {
            events.push(format!(
                "{{\"name\":\"adapt q{}->q{}\",\"cat\":\"provenance\",\"ph\":\"i\",\"ts\":{},\
                 \"pid\":{},\"tid\":0,\"s\":\"p\",\"args\":{{\"r\":{},\"run\":{},\"probe\":{}}}}}",
                a.from_level,
                a.to_level,
                a.at.as_micros(),
                a.player,
                json_f64(a.r),
                a.run,
                a.probe
            ));
        }
        for d in &self.drops {
            events.push(format!(
                "{{\"name\":\"sched.drop\",\"cat\":\"provenance\",\"ph\":\"i\",\"ts\":{},\
                 \"pid\":{},\"tid\":{},\"s\":\"p\",\"args\":{{\"demanded\":{},\"dropped\":{},\
                 \"predicted_ms\":{},\"required_ms\":{}}}}}",
                d.at.as_micros(),
                d.player,
                d.trigger,
                d.demanded,
                d.dropped,
                json_f64(d.predicted_ms),
                json_f64(d.required_ms)
            ));
        }
        format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}", events.join(","))
    }

    /// Human-readable attribution table for CLI output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} — {} traces ({} folded), outcomes: {} on-time / {} late / {} skipped / {} lost / {} evaporated\n",
            self.run, self.finished, self.folded, self.on_time, self.late, self.skipped,
            self.lost, self.evaporated
        ));
        out.push_str("  component   mean_ms    share      p50      p95      p99\n");
        for c in &self.components {
            out.push_str(&format!(
                "  {:<9} {:>9.3} {:>7.1}% {:>8.2} {:>8.2} {:>8.2}\n",
                c.name,
                c.mean_ms,
                c.share * 100.0,
                c.quantiles.p50,
                c.quantiles.p95,
                c.quantiles.p99
            ));
        }
        out.push_str(&format!(
            "  net latency p50 {:.2} / p95 {:.2} / p99 {:.2} ms over {} segments\n",
            self.total.p50, self.total.p95, self.total.p99, self.total.count
        ));
        let tail: Vec<String> = COMPONENTS
            .iter()
            .zip(self.tail.counts)
            .filter(|(_, n)| *n > 0)
            .map(|(name, n)| format!("{name}:{n}"))
            .collect();
        out.push_str(&format!(
            "  tail ≥ p99 ({:.2} ms): {} segments, dominant component {} [{}]\n",
            self.tail.threshold_ms,
            self.tail.tail_count,
            self.tail.dominant,
            tail.join(" ")
        ));
        out
    }
}

/// Count-weighted merge of per-shard quantile summaries: `count` sums
/// and `min`/`max` merge exactly; p50/p95/p99 are count-weighted means
/// of the per-shard values (see [`CausalReport::merge_shards`]).
fn merge_quantiles<'a>(parts: impl Iterator<Item = &'a Quantiles>) -> Quantiles {
    let mut out = Quantiles::default();
    let mut weighted = [0.0f64; 3];
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for q in parts {
        if q.count == 0 {
            continue;
        }
        let w = q.count as f64;
        out.count += q.count;
        weighted[0] += q.p50 * w;
        weighted[1] += q.p95 * w;
        weighted[2] += q.p99 * w;
        min = min.min(q.min);
        max = max.max(q.max);
    }
    if out.count > 0 {
        let w = out.count as f64;
        out.p50 = weighted[0] / w;
        out.p95 = weighted[1] / w;
        out.p99 = weighted[2] / w;
        out.min = min;
        out.max = max;
    }
    out
}

/// Merge one component's per-shard breakdown rows (share is filled in
/// by the caller once every component's merged mean is known).
fn merge_quantile_rows<'a>(
    name: &'static str,
    rows: impl Iterator<Item = &'a ComponentBreakdown>,
) -> ComponentBreakdown {
    let rows: Vec<&ComponentBreakdown> = rows.collect();
    let quantiles = merge_quantiles(rows.iter().map(|r| &r.quantiles));
    let total: u64 = rows.iter().map(|r| r.quantiles.count).sum();
    let mean_ms = if total > 0 {
        rows.iter().map(|r| r.mean_ms * r.quantiles.count as f64).sum::<f64>() / total as f64
    } else {
        0.0
    };
    ComponentBreakdown { name, mean_ms, share: 0.0, quantiles }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TelemetryConfig {
        TelemetryConfig::default()
    }

    fn deliver(log: &mut CausalLog, trace: u64, base_us: u64, prop_us: u64) {
        let t = SimTime::from_micros;
        log.begin(trace, 1, 0, 2, t(base_us), t(base_us + 5_000), t(base_us + 105_000), 40);
        log.stamp(trace, Stage::Enqueued, t(base_us + 15_000));
        log.stamp(trace, Stage::TxStart, t(base_us + 20_000));
        log.stamp(trace, Stage::FirstPacket, t(base_us + 21_000));
        log.stamp(trace, Stage::Delivered, t(base_us + 30_000));
        log.set_propagation(trace, SimDuration::from_micros(prop_us));
        log.finish(trace, Outcome::OnTime, t(base_us + 30_000));
    }

    #[test]
    fn components_telescope_to_reported_latency() {
        let mut log = CausalLog::new(&cfg());
        deliver(&mut log, 7, 1_000_000, 6_000);
        let t = &log.tail[0];
        let comps = t.components_ms().unwrap();
        // l_r=10ms, l_s=5ms, l_q=5ms, l_t=10−6=4ms, l_p=6ms.
        assert_eq!(comps, [10.0, 5.0, 5.0, 4.0, 6.0]);
        let net = t.latency_ms().unwrap();
        let span_sum = comps[0] + comps[2] + comps[3] + comps[4];
        assert!((span_sum - net).abs() < 1e-9, "{span_sum} vs {net}");
    }

    #[test]
    fn outcomes_and_attribution_fold() {
        let mut log = CausalLog::new(&cfg());
        for i in 0..8 {
            deliver(&mut log, i, 1_000_000 + i * 50_000, 6_000);
        }
        log.begin(
            99,
            2,
            0,
            1,
            SimTime::from_micros(0),
            SimTime::from_micros(1),
            SimTime::from_micros(2),
            10,
        );
        log.finish(99, Outcome::Lost, SimTime::from_micros(5));
        let r = log.report("test");
        assert_eq!(r.finished, 9);
        assert_eq!(r.on_time, 8);
        assert_eq!(r.lost, 1);
        assert_eq!(r.folded, 8);
        assert_eq!(r.total.count, 8);
        // l_r (10 ms) dominates every delivered trace.
        assert_eq!(r.components[0].name, "l_r");
        assert!((r.components[0].mean_ms - 10.0).abs() < 0.5);
        let share_sum: f64 = r.components.iter().map(|c| c.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn measurement_window_gates_attribution_but_not_tail() {
        let mut log = CausalLog::new(&cfg());
        log.set_measure_from(SimTime::from_secs(10));
        deliver(&mut log, 1, 1_000_000, 6_000); // graded at ~1.03 s: unmeasured
        deliver(&mut log, 2, 20_000_000, 6_000); // graded at ~20 s: measured
        let r = log.report("w");
        assert_eq!(r.folded, 1);
        assert_eq!(r.traces.len(), 2);
        assert!(!r.traces[0].measured);
        assert!(r.traces[1].measured);
    }

    #[test]
    fn rings_evict_oldest_but_counters_stay_exact() {
        let mut log = CausalLog::new(&TelemetryConfig {
            causal_tail: 4,
            provenance_tail: 2,
            ..TelemetryConfig::default()
        });
        for i in 0..10 {
            deliver(&mut log, i, 1_000_000 + i * 10_000, 1_000);
            log.record_drop(DropProvenance {
                at: SimTime::from_micros(i),
                trigger: i,
                player: 0,
                predicted_ms: 120.0,
                required_ms: 100.0,
                sigma_ms: 1.0,
                demanded: 20,
                dropped: 3,
                shares: vec![],
            });
        }
        let r = log.report("ring");
        assert_eq!(r.finished, 10);
        assert_eq!(r.traces.len(), 4);
        // Chronological tail: the last four traces in order.
        let ids: Vec<u64> = r.traces.iter().map(|t| t.trace).collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
        assert_eq!(r.drops.len(), 2);
        assert_eq!(r.drop_events, 10);
        assert_eq!(r.drop_packets, 30, "packet counter must survive eviction");
    }

    #[test]
    fn exports_are_deterministic_and_well_formed() {
        let build = || {
            let mut log = CausalLog::new(&cfg());
            deliver(&mut log, 3, 2_000_000, 4_000);
            log.record_adapt(AdaptProvenance {
                at: SimTime::from_secs(2),
                player: 1,
                from_level: 2,
                to_level: 3,
                r: 1.31,
                up_threshold: 1.3,
                down_threshold: 0.6,
                run: 5,
                probe: false,
                driver: None,
            });
            log.record_drop(DropProvenance {
                at: SimTime::from_secs(3),
                trigger: 3,
                player: 1,
                predicted_ms: 130.0,
                required_ms: 100.0,
                sigma_ms: 2.0,
                demanded: 15,
                dropped: 6,
                shares: vec![DropShare {
                    trace: 3,
                    tolerance: 0.2,
                    phi: 0.9,
                    weight: 0.18,
                    dropped: 6,
                }],
            });
            log.report("det")
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b);
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.chrome_trace_json(), b.chrome_trace_json());
        let chrome = a.chrome_trace_json();
        assert!(chrome.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"name\":\"l_p\""));
        assert!(chrome.contains("\"name\":\"sched.drop\""));
        let jsonl = a.to_jsonl();
        // summary + 5 components + tail + trace + adapt + drop lines.
        assert!(jsonl.lines().count() >= 10);
        assert!(jsonl.contains("\"causal\":\"summary\""));
        assert!(jsonl.contains("\"outcome\":\"on_time\""));
    }

    #[test]
    fn adapt_driver_field_is_optional_in_json() {
        let mut p = AdaptProvenance {
            at: SimTime::from_secs(2),
            player: 1,
            from_level: 2,
            to_level: 3,
            r: 1.31,
            up_threshold: 1.3,
            down_threshold: 0.6,
            run: 5,
            probe: false,
            driver: None,
        };
        // Legacy (paper controller) records keep the exact pre-arena
        // byte format: no driver key at all.
        assert!(!p.to_json().contains("driver"));
        assert!(p.to_json().ends_with("\"probe\":false}"));
        assert_eq!(p.driver_label(), "buffer.r");
        p.probe = true;
        assert_eq!(p.driver_label(), "probe.stable");
        p.driver = Some("throughput.ewma");
        assert!(p.to_json().ends_with("\"probe\":true,\"driver\":\"throughput.ewma\"}"));
        assert_eq!(p.driver_label(), "throughput.ewma");
    }

    #[test]
    fn dominant_switch_driver_counts_the_ring() {
        let mut log = CausalLog::new(&cfg());
        let adapt = |driver, probe| AdaptProvenance {
            at: SimTime::from_secs(1),
            player: 0,
            from_level: 2,
            to_level: 1,
            r: 0.3,
            up_threshold: 1.6,
            down_threshold: 0.8,
            run: 3,
            probe,
            driver,
        };
        assert_eq!(log.report("empty").dominant_switch_driver(), None);
        log.record_adapt(adapt(Some("host.load"), false));
        log.record_adapt(adapt(Some("host.load"), false));
        log.record_adapt(adapt(None, false));
        log.record_adapt(adapt(None, true));
        let r = log.report("drivers");
        assert_eq!(r.dominant_switch_driver(), Some(("host.load", 2)));
    }

    #[test]
    fn merge_shards_sums_counters_and_reweights_components() {
        let mut a = CausalLog::new(&cfg());
        for i in 0..4 {
            deliver(&mut a, i, 1_000_000 + i * 50_000, 6_000);
        }
        let mut b = CausalLog::new(&cfg());
        for i in 0..2 {
            deliver(&mut b, 100 + i, 2_000_000 + i * 50_000, 6_000);
        }
        b.begin(
            199,
            2,
            0,
            1,
            SimTime::from_micros(0),
            SimTime::from_micros(1),
            SimTime::from_micros(2),
            10,
        );
        b.finish(199, Outcome::Lost, SimTime::from_micros(5));
        let ra = a.report("shard0");
        let rb = b.report("shard1");
        let m = CausalReport::merge_shards("merged", &[&ra, &rb]);
        assert_eq!(m.run, "merged");
        assert_eq!(m.finished, ra.finished + rb.finished);
        assert_eq!(m.on_time, 6);
        assert_eq!(m.lost, 1);
        assert_eq!(m.folded, 6);
        assert_eq!(m.total.count, 6);
        // Every delivered trace shares the same component profile, so
        // the count-weighted merge reproduces it and shares stay
        // normalized.
        assert_eq!(m.components[0].name, "l_r");
        assert!((m.components[0].mean_ms - 10.0).abs() < 0.5);
        let share_sum: f64 = m.components.iter().map(|c| c.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "shares must renormalize: {share_sum}");
        // Records concatenate in shard order.
        assert_eq!(m.traces.len(), ra.traces.len() + rb.traces.len());
        assert_eq!(m.tail.tail_count, ra.tail.tail_count + rb.tail.tail_count);
        for k in 0..5 {
            assert_eq!(m.tail.counts[k], ra.tail.counts[k] + rb.tail.counts[k]);
        }
    }

    #[test]
    fn merge_shards_of_one_report_is_lossless_on_counters() {
        let mut log = CausalLog::new(&cfg());
        for i in 0..5 {
            deliver(&mut log, i, 1_000_000 + i * 40_000, 6_000);
        }
        let r = log.report("solo");
        let m = CausalReport::merge_shards("solo", &[&r]);
        assert_eq!(m.finished, r.finished);
        assert_eq!(m.on_time, r.on_time);
        assert_eq!(m.folded, r.folded);
        assert_eq!(m.total.count, r.total.count);
        assert_eq!(m.traces.len(), r.traces.len());
        assert_eq!(m.tail.dominant, r.tail.dominant);
    }

    #[test]
    fn in_flight_traces_stay_open() {
        let mut log = CausalLog::new(&cfg());
        log.begin(
            5,
            1,
            0,
            0,
            SimTime::ZERO,
            SimTime::from_millis(5),
            SimTime::from_millis(105),
            12,
        );
        assert_eq!(log.in_flight(), 1);
        let r = log.report("open");
        assert_eq!(r.in_flight, 1);
        assert_eq!(r.finished, 0);
    }
}
