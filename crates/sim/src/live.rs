//! Tick-synchronous live metrics plane: typed registry, SLO engine
//! with multi-window burn-rate alerting, and streaming exposition.
//!
//! Everything post-run in this crate ([`crate::telemetry`],
//! [`crate::causal`]) only materializes after the run finishes; this
//! module is the *online* counterpart. A driver samples a
//! [`MetricsRegistry`] at every tick/epoch boundary (pull-based — the
//! simulation's hot path never touches the registry, which is what
//! keeps the plane zero-cost when off), feeds it to an [`SloEngine`]
//! holding declarative [`SloSpec`]s, and streams snapshots through a
//! [`MetricsSink`] (Prometheus text or JSONL).
//!
//! The alerting shape is the SRE-workbook multi-window multi-burn-rate
//! rule: each objective turns every sample into an instantaneous
//! *burn rate* — error rate over error budget — and an [`Alert`] fires
//! on the rising edge where both a fast (paging) window and a slow
//! (confirmation) window exceed their thresholds. Alerts carry
//! provenance: the observed value, both burn rates and windows, and —
//! when the driver supplies it — the dominant Eq. 12 latency
//! component from the causal attribution fold.
//!
//! Everything here is keyed by simulated time only, so the alert log
//! and the JSONL exposition are byte-identical across same-seed runs,
//! and registries fold in canonical shard order so lane count stays
//! bit-invisible (`tests/live_ops.rs`).

use crate::stats::Histogram;
use crate::telemetry::{json_escape, json_f64};
use crate::time::SimTime;

/// What a metric measures, which fixes how it samples and merges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone cumulative total, sampled as an absolute value
    /// (Prometheus counter semantics). Merges by sum.
    Counter,
    /// Point-in-time level. Merges by weighted mean (weights are the
    /// driver's — typically shard player counts).
    Gauge,
    /// Cumulative fixed-bucket distribution. Merges bucket-wise via
    /// [`Histogram::merge`] (identical geometry required).
    Histogram,
}

impl MetricKind {
    /// Prometheus `# TYPE` label.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Static description of one registered metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricSpec {
    /// Dotted vocabulary name, e.g. `qoe.continuity`.
    pub name: &'static str,
    /// What the metric measures.
    pub kind: MetricKind,
    /// One-line human description (Prometheus `# HELP`).
    pub help: &'static str,
}

/// Handle to a registered metric — an index into the registry's
/// registration-order slab, so lookups on the sampling path are O(1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricId(usize);

/// Current sampled value of one metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Cumulative total.
    Counter(u64),
    /// Current level.
    Gauge(f64),
    /// Cumulative distribution.
    Histogram(Histogram),
}

/// Typed, statically-keyed metrics registry.
///
/// Registration fixes the vocabulary (names must be unique); sampling
/// overwrites absolute values in place. Iteration and exposition
/// always follow registration order, and [`MetricsRegistry::fold`]
/// combines per-shard registries deterministically (counters sum,
/// gauges take the weighted mean, histograms merge bucket-wise), so
/// two registries built from the same samples are equal no matter
/// which lane sampled which shard.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsRegistry {
    specs: Vec<MetricSpec>,
    values: Vec<MetricValue>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry { specs: Vec::new(), values: Vec::new() }
    }

    fn register(&mut self, spec: MetricSpec, value: MetricValue) -> MetricId {
        assert!(
            self.specs.iter().all(|s| s.name != spec.name),
            "metric {} registered twice",
            spec.name
        );
        self.specs.push(spec);
        self.values.push(value);
        MetricId(self.specs.len() - 1)
    }

    /// Register a counter (starts at 0).
    pub fn counter(&mut self, name: &'static str, help: &'static str) -> MetricId {
        self.register(MetricSpec { name, kind: MetricKind::Counter, help }, MetricValue::Counter(0))
    }

    /// Register a gauge (starts at 0.0).
    pub fn gauge(&mut self, name: &'static str, help: &'static str) -> MetricId {
        self.register(MetricSpec { name, kind: MetricKind::Gauge, help }, MetricValue::Gauge(0.0))
    }

    /// Register a histogram with fixed geometry `[lo, hi)` × `bins`.
    pub fn histogram(
        &mut self,
        name: &'static str,
        help: &'static str,
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> MetricId {
        self.register(
            MetricSpec { name, kind: MetricKind::Histogram, help },
            MetricValue::Histogram(Histogram::new(lo, hi, bins)),
        )
    }

    /// Overwrite a counter's cumulative total.
    pub fn set_counter(&mut self, id: MetricId, total: u64) {
        match &mut self.values[id.0] {
            MetricValue::Counter(c) => *c = total,
            v => panic!("set_counter on {:?}", v),
        }
    }

    /// Overwrite a gauge's level.
    pub fn set_gauge(&mut self, id: MetricId, value: f64) {
        match &mut self.values[id.0] {
            MetricValue::Gauge(g) => *g = value,
            v => panic!("set_gauge on {:?}", v),
        }
    }

    /// Overwrite a histogram with the current cumulative distribution.
    pub fn set_histogram(&mut self, id: MetricId, hist: Histogram) {
        match &mut self.values[id.0] {
            MetricValue::Histogram(h) => *h = hist,
            v => panic!("set_histogram on {:?}", v),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// `(spec, value)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&MetricSpec, &MetricValue)> {
        self.specs.iter().zip(self.values.iter())
    }

    /// Look a metric up by name (exposition-path convenience; the
    /// sampling path should hold [`MetricId`]s instead).
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.specs.iter().position(|s| s.name == name).map(|i| &self.values[i])
    }

    /// Current counter total, when `name` is a counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(c) => Some(*c),
            _ => None,
        }
    }

    /// Current gauge level, when `name` is a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            MetricValue::Gauge(g) => Some(*g),
            _ => None,
        }
    }

    /// Deterministic weighted fold of per-shard registries into one.
    ///
    /// All inputs must share the vocabulary of the first (same names,
    /// same order — the registries are built by the same installer, so
    /// a mismatch is a bug). Counters sum, gauges take the
    /// weight-weighted mean folded in input order (the driver passes
    /// canonical shard order, making the result lane-invariant),
    /// histograms merge bucket-wise. Returns an empty registry for an
    /// empty input.
    pub fn fold(inputs: &[(f64, &MetricsRegistry)]) -> MetricsRegistry {
        let Some((_, first)) = inputs.first() else {
            return MetricsRegistry::new();
        };
        let mut out = (*first).clone();
        for (slot, spec) in out.values.iter_mut().zip(out.specs.iter()) {
            match slot {
                MetricValue::Counter(c) => {
                    let mut sum = 0u64;
                    for (_, reg) in inputs {
                        match reg.value_of(spec.name) {
                            MetricValue::Counter(v) => sum += v,
                            v => panic!("fold: {} is not a counter everywhere ({v:?})", spec.name),
                        }
                    }
                    *c = sum;
                }
                MetricValue::Gauge(g) => {
                    let mut weighted = 0.0;
                    let mut weight = 0.0;
                    for (w, reg) in inputs {
                        match reg.value_of(spec.name) {
                            MetricValue::Gauge(v) => {
                                weighted += v * w;
                                weight += w;
                            }
                            v => panic!("fold: {} is not a gauge everywhere ({v:?})", spec.name),
                        }
                    }
                    *g = if weight > 0.0 { weighted / weight } else { 0.0 };
                }
                MetricValue::Histogram(h) => {
                    let mut merged: Option<Histogram> = None;
                    for (_, reg) in inputs {
                        match reg.get(spec.name) {
                            Some(MetricValue::Histogram(v)) => match &mut merged {
                                Some(m) => m.merge(v),
                                None => merged = Some(v.clone()),
                            },
                            v => {
                                panic!("fold: {} is not a histogram everywhere ({v:?})", spec.name)
                            }
                        }
                    }
                    *h = merged.expect("at least one input");
                }
            }
        }
        out
    }

    fn value_of(&self, name: &str) -> MetricValue {
        self.get(name).unwrap_or_else(|| panic!("fold: metric {name} missing")).clone()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// Streaming consumer of registry snapshots and fired alerts.
///
/// The driver calls [`MetricsSink::snapshot`] after every sampled tick
/// and [`MetricsSink::alert`] on every rising-edge alert — exposition
/// happens while the run is still going, not after it returns.
pub trait MetricsSink {
    /// One sampled tick: the boundary time and the (merged) registry.
    fn snapshot(&mut self, at: SimTime, registry: &MetricsRegistry);

    /// One fired alert (rising edge). Default: ignore.
    fn alert(&mut self, _alert: &Alert) {}
}

/// Sink that discards everything (the off-path default).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl MetricsSink for NullSink {
    fn snapshot(&mut self, _at: SimTime, _registry: &MetricsRegistry) {}
}

/// Prometheus text-format encoder: every snapshot appends one scrape's
/// worth of `# HELP` / `# TYPE` / sample lines, stamped with the
/// simulated time as the metric timestamp (milliseconds, as the
/// exposition format specifies).
#[derive(Clone, Debug, Default)]
pub struct PrometheusEncoder {
    buf: String,
}

impl PrometheusEncoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything encoded so far.
    pub fn text(&self) -> &str {
        &self.buf
    }

    /// Consume the encoder, yielding the full exposition text.
    pub fn into_text(self) -> String {
        self.buf
    }
}

/// `qoe.continuity` → `qoe_continuity` (Prometheus name charset).
fn prom_name(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

impl MetricsSink for PrometheusEncoder {
    fn snapshot(&mut self, at: SimTime, registry: &MetricsRegistry) {
        use std::fmt::Write;
        let ts = at.as_micros() / 1_000;
        for (spec, value) in registry.iter() {
            let name = prom_name(spec.name);
            let _ = writeln!(self.buf, "# HELP {name} {}", spec.help);
            let _ = writeln!(self.buf, "# TYPE {name} {}", spec.kind.label());
            match value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(self.buf, "{name}_total {c} {ts}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(self.buf, "{name} {} {ts}", json_f64(*g));
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (le, count) in h.buckets() {
                        cumulative += count;
                        let _ = writeln!(
                            self.buf,
                            "{name}_bucket{{le=\"{}\"}} {cumulative} {ts}",
                            json_f64(le)
                        );
                    }
                    let _ = writeln!(self.buf, "{name}_bucket{{le=\"+Inf\"}} {} {ts}", h.count());
                    let _ = writeln!(self.buf, "{name}_count {} {ts}", h.count());
                }
            }
        }
    }
}

/// JSONL snapshot encoder: one `{"live":"sample",...}` line per
/// sampled tick (scalars inline, histograms as count + p50/p99), plus
/// one `{"live":"alert",...}` line per fired alert, interleaved in
/// firing order. Sim-time keyed only — byte-identical across
/// same-seed runs.
#[derive(Clone, Debug, Default)]
pub struct JsonlEncoder {
    buf: String,
}

impl JsonlEncoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything encoded so far.
    pub fn text(&self) -> &str {
        &self.buf
    }

    /// Consume the encoder, yielding the full JSONL text.
    pub fn into_text(self) -> String {
        self.buf
    }
}

impl MetricsSink for JsonlEncoder {
    fn snapshot(&mut self, at: SimTime, registry: &MetricsRegistry) {
        use std::fmt::Write;
        let _ = write!(self.buf, "{{\"live\":\"sample\",\"t_ms\":{}", at.as_micros() / 1_000);
        for (spec, value) in registry.iter() {
            match value {
                MetricValue::Counter(c) => {
                    let _ = write!(self.buf, ",\"{}\":{}", json_escape(spec.name), c);
                }
                MetricValue::Gauge(g) => {
                    let _ = write!(self.buf, ",\"{}\":{}", json_escape(spec.name), json_f64(*g));
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        self.buf,
                        ",\"{}\":{{\"count\":{},\"p50\":{},\"p99\":{}}}",
                        json_escape(spec.name),
                        h.count(),
                        json_f64(h.quantile(0.5).unwrap_or(0.0)),
                        json_f64(h.quantile(0.99).unwrap_or(0.0)),
                    );
                }
            }
        }
        self.buf.push_str("}\n");
    }

    fn alert(&mut self, alert: &Alert) {
        self.buf.push_str(&alert.to_json());
        self.buf.push('\n');
    }
}

/// What an [`SloSpec`] asserts about the sampled registry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SloObjective {
    /// A gauge must stay at or above `target` (e.g. continuity).
    GaugeAtLeast {
        /// Gauge metric name.
        metric: &'static str,
        /// Lower bound the gauge must hold.
        target: f64,
    },
    /// A gauge must stay at or below `bound` (e.g. load factor).
    GaugeAtMost {
        /// Gauge metric name.
        metric: &'static str,
        /// Upper bound the gauge must hold.
        bound: f64,
    },
    /// A histogram quantile must stay at or below `bound` (e.g. p99
    /// interaction latency). Empty histograms are compliant — no
    /// signal is not bad signal.
    QuantileAtMost {
        /// Histogram metric name.
        metric: &'static str,
        /// Quantile in `[0, 1]`.
        q: f64,
        /// Upper bound on the quantile value.
        bound: f64,
    },
    /// The per-tick increase of `bad` over the per-tick increase of
    /// `total` must stay within the error budget itself (e.g. Eq. 14
    /// drop share). Both metrics are cumulative counters; a tick with
    /// no `total` growth is compliant.
    RatioAtMost {
        /// Numerator counter (bad events).
        bad: &'static str,
        /// Denominator counter (all events).
        total: &'static str,
    },
}

impl SloObjective {
    /// The metric name an alert reports as the objective's subject.
    pub fn metric(&self) -> &'static str {
        match self {
            SloObjective::GaugeAtLeast { metric, .. }
            | SloObjective::GaugeAtMost { metric, .. }
            | SloObjective::QuantileAtMost { metric, .. } => metric,
            SloObjective::RatioAtMost { bad, .. } => bad,
        }
    }
}

/// One declarative service-level objective with its burn-rate alert
/// policy.
///
/// `budget` is the error budget: the long-run fraction of
/// non-compliant ticks (threshold objectives) or the allowed bad/total
/// ratio (ratio objectives). Each sample yields an instantaneous burn
/// rate — error rate over budget, so sustained burn 1.0 exactly
/// exhausts the budget — and the engine fires when the mean burn over
/// *both* the fast window (pages fast) and the slow window (confirms
/// it is not a blip) is at or above its threshold.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloSpec {
    /// Stable objective name, `area.property` style.
    pub name: &'static str,
    /// What the objective asserts.
    pub objective: SloObjective,
    /// Error budget (fraction in `(0, 1]`).
    pub budget: f64,
    /// Fast window length in sampled ticks.
    pub fast_window: usize,
    /// Slow window length in sampled ticks (≥ fast).
    pub slow_window: usize,
    /// Mean burn over the fast window must reach this to fire.
    pub fast_burn: f64,
    /// Mean burn over the slow window must reach this to fire.
    pub slow_burn: f64,
}

impl SloSpec {
    /// Largest burn rate a single tick can contribute: full error
    /// rate (1.0) over the budget. Window means — and therefore every
    /// recorded alert's burn rates — are bounded by this, which is
    /// what the harness's `slo.burn_rate_bounded` invariant pins.
    pub fn max_burn(&self) -> f64 {
        1.0 / self.budget
    }
}

/// One fired burn-rate alert (rising edge), with provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct Alert {
    /// Simulated time of the sample that fired the alert.
    pub at: SimTime,
    /// Name of the [`SloSpec`] that fired.
    pub slo: &'static str,
    /// Metric the objective watches.
    pub metric: &'static str,
    /// Observed value at the firing sample (gauge level, quantile
    /// value, or tick bad/total ratio).
    pub value: f64,
    /// Mean burn rate over the fast window.
    pub fast_burn: f64,
    /// Mean burn rate over the slow window.
    pub slow_burn: f64,
    /// Fast window length (ticks).
    pub fast_window: usize,
    /// Slow window length (ticks).
    pub slow_window: usize,
    /// Dominant Eq. 12 latency component at firing time (from the
    /// causal attribution fold), when the driver had telemetry on.
    pub dominant_component: Option<&'static str>,
}

impl Alert {
    /// One deterministic JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"live\":\"alert\",\"t_ms\":{},\"slo\":\"{}\",\"metric\":\"{}\",\
             \"value\":{},\"fast_burn\":{},\"slow_burn\":{},\"fast_window\":{},\
             \"slow_window\":{},\"dominant\":{}}}",
            self.at.as_micros() / 1_000,
            json_escape(self.slo),
            json_escape(self.metric),
            json_f64(self.value),
            json_f64(self.fast_burn),
            json_f64(self.slow_burn),
            self.fast_window,
            self.slow_window,
            match self.dominant_component {
                Some(c) => format!("\"{}\"", json_escape(c)),
                None => "null".to_string(),
            },
        )
    }
}

/// Append-only log of fired alerts with deterministic JSONL export.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AlertLog {
    alerts: Vec<Alert>,
}

impl AlertLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one fired alert.
    pub fn push(&mut self, alert: Alert) {
        self.alerts.push(alert);
    }

    /// Alerts in firing order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Number of fired alerts.
    pub fn len(&self) -> usize {
        self.alerts.len()
    }

    /// True when nothing fired.
    pub fn is_empty(&self) -> bool {
        self.alerts.is_empty()
    }

    /// The whole log as JSONL (one line per alert).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for a in &self.alerts {
            out.push_str(&a.to_json());
            out.push('\n');
        }
        out
    }
}

/// Per-objective sliding-window state.
#[derive(Clone, Debug)]
struct SloState {
    /// Ring of the last `slow_window` instantaneous burn rates.
    burns: Vec<f64>,
    next: usize,
    filled: usize,
    /// Previous counter totals for ratio objectives.
    prev_bad: u64,
    prev_total: u64,
    /// True while the alert condition holds (suppresses re-firing
    /// until the fast window recedes below threshold — the rising-edge
    /// discipline).
    firing: bool,
}

impl SloState {
    fn new(spec: &SloSpec) -> Self {
        SloState {
            burns: vec![0.0; spec.slow_window.max(1)],
            next: 0,
            filled: 0,
            prev_bad: 0,
            prev_total: 0,
            firing: false,
        }
    }

    fn push(&mut self, burn: f64) {
        self.burns[self.next] = burn;
        self.next = (self.next + 1) % self.burns.len();
        self.filled = (self.filled + 1).min(self.burns.len());
    }

    /// Mean of the newest `window` pushed burns (all pushed, if fewer).
    fn window_mean(&self, window: usize) -> f64 {
        let n = window.max(1).min(self.filled);
        if n == 0 {
            return 0.0;
        }
        let len = self.burns.len();
        let mut sum = 0.0;
        for i in 0..n {
            sum += self.burns[(self.next + len - 1 - i) % len];
        }
        sum / n as f64
    }
}

/// Online evaluator of a set of [`SloSpec`]s over registry samples.
///
/// Feed it every sampled tick via [`SloEngine::observe`]; it returns
/// the alerts that fired on that tick (rising edges only) and appends
/// them to its own [`AlertLog`]. Purely a function of the sample
/// sequence — no wall clock, no RNG — so the log is deterministic.
#[derive(Clone, Debug)]
pub struct SloEngine {
    specs: Vec<SloSpec>,
    states: Vec<SloState>,
    log: AlertLog,
    samples: u64,
}

impl SloEngine {
    /// An engine evaluating `specs`.
    pub fn new(specs: Vec<SloSpec>) -> Self {
        for s in &specs {
            assert!(s.budget > 0.0 && s.budget <= 1.0, "{}: budget must be in (0,1]", s.name);
            assert!(s.fast_window >= 1, "{}: fast window must be ≥ 1", s.name);
            assert!(s.slow_window >= s.fast_window, "{}: slow window < fast window", s.name);
        }
        let states = specs.iter().map(SloState::new).collect();
        SloEngine { specs, states, log: AlertLog::new(), samples: 0 }
    }

    /// The objectives under evaluation.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Samples observed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Everything fired so far.
    pub fn log(&self) -> &AlertLog {
        &self.log
    }

    /// Consume the engine, yielding its alert log.
    pub fn into_log(self) -> AlertLog {
        self.log
    }

    /// Feed one sampled tick. Returns the alerts that fired on this
    /// tick; `dominant` is stamped onto them as causal provenance.
    pub fn observe(
        &mut self,
        at: SimTime,
        registry: &MetricsRegistry,
        dominant: Option<&'static str>,
    ) -> Vec<Alert> {
        self.samples += 1;
        let mut fired = Vec::new();
        for (spec, state) in self.specs.iter().zip(self.states.iter_mut()) {
            let (value, error) = instantaneous_error(&spec.objective, registry, state);
            let burn = error / spec.budget;
            state.push(burn);
            let fast = state.window_mean(spec.fast_window);
            let slow = state.window_mean(spec.slow_window);
            let breach = fast >= spec.fast_burn && slow >= spec.slow_burn;
            if breach && !state.firing {
                let alert = Alert {
                    at,
                    slo: spec.name,
                    metric: spec.objective.metric(),
                    value,
                    fast_burn: fast,
                    slow_burn: slow,
                    fast_window: spec.fast_window,
                    slow_window: spec.slow_window,
                    dominant_component: dominant,
                };
                self.log.push(alert.clone());
                fired.push(alert);
            }
            state.firing = breach;
        }
        fired
    }
}

/// `(observed value, instantaneous error rate in [0, 1])` for one
/// objective against the current sample. Missing metrics are
/// compliant: the vocabulary is static, so absence means the driver
/// does not produce that signal (e.g. latency histograms with
/// telemetry off), not that the service is failing.
fn instantaneous_error(
    objective: &SloObjective,
    registry: &MetricsRegistry,
    state: &mut SloState,
) -> (f64, f64) {
    match objective {
        SloObjective::GaugeAtLeast { metric, target } => {
            let v = registry.gauge_value(metric).unwrap_or(*target);
            (v, if v < *target { 1.0 } else { 0.0 })
        }
        SloObjective::GaugeAtMost { metric, bound } => {
            let v = registry.gauge_value(metric).unwrap_or(*bound);
            (v, if v > *bound { 1.0 } else { 0.0 })
        }
        SloObjective::QuantileAtMost { metric, q, bound } => {
            let v = match registry.get(metric) {
                Some(MetricValue::Histogram(h)) => h.quantile(*q).unwrap_or(0.0),
                _ => 0.0,
            };
            (v, if v > *bound { 1.0 } else { 0.0 })
        }
        SloObjective::RatioAtMost { bad, total } => {
            let bad_now = registry.counter_value(bad).unwrap_or(state.prev_bad);
            let total_now = registry.counter_value(total).unwrap_or(state.prev_total);
            let d_bad = bad_now.saturating_sub(state.prev_bad);
            let d_total = total_now.saturating_sub(state.prev_total);
            state.prev_bad = bad_now;
            state.prev_total = total_now;
            let ratio = if d_total > 0 { d_bad as f64 / d_total as f64 } else { 0.0 };
            (ratio, ratio.clamp(0.0, 1.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn spec(name: &'static str, objective: SloObjective) -> SloSpec {
        SloSpec {
            name,
            objective,
            budget: 0.1,
            fast_window: 2,
            slow_window: 4,
            fast_burn: 5.0,
            slow_burn: 2.5,
        }
    }

    #[test]
    fn registry_rejects_duplicate_names_and_type_confusion() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("a.total", "a");
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut r2 = r.clone();
            r2.counter("a.total", "again");
        }))
        .is_err());
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut r2 = r.clone();
            r2.set_gauge(c, 1.0);
        }))
        .is_err());
        r.set_counter(c, 7);
        assert_eq!(r.counter_value("a.total"), Some(7));
    }

    #[test]
    fn fold_sums_counters_means_gauges_merges_histograms() {
        let build = |c: u64, g: f64, xs: &[f64]| {
            let mut r = MetricsRegistry::new();
            let ci = r.counter("c", "");
            let gi = r.gauge("g", "");
            let hi = r.histogram("h", "", 0.0, 10.0, 10);
            r.set_counter(ci, c);
            r.set_gauge(gi, g);
            let mut h = Histogram::new(0.0, 10.0, 10);
            for &x in xs {
                h.record(x);
            }
            r.set_histogram(hi, h);
            r
        };
        let a = build(3, 1.0, &[1.0, 2.0]);
        let b = build(4, 3.0, &[5.0]);
        let folded = MetricsRegistry::fold(&[(1.0, &a), (3.0, &b)]);
        assert_eq!(folded.counter_value("c"), Some(7));
        assert!((folded.gauge_value("g").unwrap() - 2.5).abs() < 1e-12);
        match folded.get("h").unwrap() {
            MetricValue::Histogram(h) => assert_eq!(h.count(), 3),
            v => panic!("{v:?}"),
        }
        // Empty fold is the empty registry.
        assert!(MetricsRegistry::fold(&[]).is_empty());
    }

    #[test]
    fn burn_rate_fires_on_rising_edge_only_and_rearms() {
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("qoe", "");
        let mut engine = SloEngine::new(vec![spec(
            "qoe.min",
            SloObjective::GaugeAtLeast { metric: "qoe", target: 0.9 },
        )]);
        let mut t = SimTime::ZERO;
        let mut step = |engine: &mut SloEngine, reg: &mut MetricsRegistry, v: f64| {
            reg.set_gauge(g, v);
            t += SimDuration::from_secs(1);
            engine.observe(t, reg, Some("l_q")).len()
        };
        // Healthy ticks: nothing fires.
        assert_eq!(step(&mut engine, &mut reg, 0.95), 0);
        assert_eq!(step(&mut engine, &mut reg, 0.95), 0);
        // Sustained breach: burn 10 ≥ fast 5 after one bad tick is
        // possible only once the slow window catches up (slow mean
        // over 4 ticks needs ≥ 2.5, i.e. one bad tick).
        assert_eq!(step(&mut engine, &mut reg, 0.5), 1, "rising edge fires");
        assert_eq!(step(&mut engine, &mut reg, 0.5), 0, "still firing: no re-fire");
        // Recovery re-arms, a second breach fires again.
        assert_eq!(step(&mut engine, &mut reg, 0.95), 0);
        assert_eq!(step(&mut engine, &mut reg, 0.95), 0);
        assert_eq!(step(&mut engine, &mut reg, 0.95), 0);
        assert_eq!(step(&mut engine, &mut reg, 0.95), 0);
        assert_eq!(step(&mut engine, &mut reg, 0.5), 1, "re-armed edge fires");
        let log = engine.log();
        assert_eq!(log.len(), 2);
        assert_eq!(log.alerts()[0].dominant_component, Some("l_q"));
        assert!(log.alerts()[0].fast_burn <= engine.specs()[0].max_burn() + 1e-9);
        // The JSONL export is stable and one line per alert.
        assert_eq!(log.to_jsonl().lines().count(), 2);
        assert!(log.to_jsonl().contains("\"slo\":\"qoe.min\""));
    }

    #[test]
    fn ratio_objective_tracks_counter_deltas() {
        let mut reg = MetricsRegistry::new();
        let bad = reg.counter("bad", "");
        let total = reg.counter("tot", "");
        let mut engine = SloEngine::new(vec![SloSpec {
            name: "drops.budget",
            objective: SloObjective::RatioAtMost { bad: "bad", total: "tot" },
            budget: 0.05,
            fast_window: 1,
            slow_window: 1,
            fast_burn: 2.0,
            slow_burn: 2.0,
        }]);
        // Tick 1: 100 events, 1 bad → ratio 0.01, burn 0.2: quiet.
        reg.set_counter(bad, 1);
        reg.set_counter(total, 100);
        assert!(engine.observe(SimTime::from_secs(1), &reg, None).is_empty());
        // Tick 2: 100 more events, 20 more bad → ratio 0.2, burn 4.
        reg.set_counter(bad, 21);
        reg.set_counter(total, 200);
        let fired = engine.observe(SimTime::from_secs(2), &reg, None);
        assert_eq!(fired.len(), 1);
        assert!((fired[0].value - 0.2).abs() < 1e-12);
        // Tick 3: no total growth → compliant even while counters hold.
        assert!(engine.observe(SimTime::from_secs(3), &reg, None).is_empty());
    }

    #[test]
    fn encoders_are_deterministic_functions_of_the_samples() {
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("qoe.continuity", "mean playback continuity");
        let c = reg.counter("sched.drop_packets", "scheduler-dropped packets");
        let h = reg.histogram("latency_ms.segment", "segment latency", 0.0, 100.0, 4);
        reg.set_gauge(g, 0.5);
        reg.set_counter(c, 9);
        let mut hist = Histogram::new(0.0, 100.0, 4);
        hist.record(10.0);
        hist.record(80.0);
        reg.set_histogram(h, hist);
        let encode = || {
            let mut prom = PrometheusEncoder::new();
            let mut jsonl = JsonlEncoder::new();
            prom.snapshot(SimTime::from_secs(5), &reg);
            jsonl.snapshot(SimTime::from_secs(5), &reg);
            (prom.into_text(), jsonl.into_text())
        };
        let (p1, j1) = encode();
        let (p2, j2) = encode();
        assert_eq!(p1, p2);
        assert_eq!(j1, j2);
        assert!(p1.contains("# TYPE qoe_continuity gauge"));
        assert!(p1.contains("sched_drop_packets_total 9 5000"));
        assert!(p1.contains("latency_ms_segment_count 2 5000"));
        assert!(j1.contains("\"qoe.continuity\":0.5"));
        assert!(j1.contains("\"latency_ms.segment\":{\"count\":2"));
    }
}
