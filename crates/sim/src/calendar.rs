//! Calendar-queue event scheduler.
//!
//! A calendar queue (Brown, CACM 1988) buckets pending events by
//! firing time modulo a "year" of `num_buckets × bucket_width`. When
//! event timestamps are roughly uniform at the current time scale —
//! as in a steady-state streaming simulation where most events are
//! packet departures a few milliseconds out — enqueue/dequeue are
//! amortized O(1), versus O(log n) for a binary heap.
//!
//! This implementation resizes itself (doubling/halving the bucket
//! count and re-estimating the bucket width from a sample of pending
//! events) when occupancy leaves the `[num_buckets/2, 2·num_buckets]`
//! band, as in Brown's original design.
//!
//! It exists as an **ablation substrate**: `cloudfog-bench` compares it
//! against [`crate::event::EventQueue`] under the CloudFog event mix
//! (`ablation_event_queue`), and the engine can be instantiated with
//! either through the [`PendingSet`] trait.

use crate::event::Scheduled;
use crate::time::SimTime;

/// Abstraction over pending-event containers so the engine can be run
/// with either the binary heap or the calendar queue.
pub trait PendingSet<E> {
    /// Schedule `event` at `time`.
    fn insert(&mut self, time: SimTime, event: E);
    /// Remove and return the earliest event (FIFO among ties).
    fn pop_earliest(&mut self) -> Option<Scheduled<E>>;
    /// Number of pending events.
    fn pending(&self) -> usize;
}

impl<E> PendingSet<E> for crate::event::EventQueue<E> {
    fn insert(&mut self, time: SimTime, event: E) {
        self.push(time, event);
    }
    fn pop_earliest(&mut self) -> Option<Scheduled<E>> {
        self.pop()
    }
    fn pending(&self) -> usize {
        self.len()
    }
}

/// Calendar queue over µs timestamps.
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// `buckets[i]` holds events with `time/width ≡ i (mod n)`, each
    /// bucket sorted ascending by `(time, seq)` at pop time (lazy).
    buckets: Vec<Vec<Scheduled<E>>>,
    /// Bucket width in µs.
    width: u64,
    /// Index of the bucket the current "day" pointer is on.
    cursor: usize,
    /// Start of the day the cursor is on (µs).
    cursor_day_start: u64,
    len: usize,
    next_seq: u64,
}

const INITIAL_BUCKETS: usize = 16;
const INITIAL_WIDTH_US: u64 = 1_000; // 1 ms — typical packet spacing.

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// An empty queue with default geometry (16 buckets × 1 ms).
    pub fn new() -> Self {
        Self::with_geometry(INITIAL_BUCKETS, INITIAL_WIDTH_US)
    }

    /// An empty queue with an explicit bucket count and width (µs).
    pub fn with_geometry(num_buckets: usize, width_us: u64) -> Self {
        assert!(num_buckets > 0 && width_us > 0);
        CalendarQueue {
            buckets: (0..num_buckets).map(|_| Vec::new()).collect(),
            width: width_us,
            cursor: 0,
            cursor_day_start: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_of(&self, time_us: u64) -> usize {
        ((time_us / self.width) % self.buckets.len() as u64) as usize
    }

    /// Schedule `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.bucket_of(time.as_micros());
        self.buckets[idx].push(Scheduled { time, seq, event });
        self.len += 1;
        if self.len > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        // Walk days/buckets until we find an event due in the bucket's
        // current day window.
        loop {
            for _ in 0..n {
                let day_end = self.cursor_day_start + self.width;
                let bucket = &mut self.buckets[self.cursor];
                if !bucket.is_empty() {
                    // Find the minimum (time, seq) event due this day.
                    let mut best: Option<usize> = None;
                    for (i, s) in bucket.iter().enumerate() {
                        if s.time.as_micros() < day_end {
                            match best {
                                None => best = Some(i),
                                Some(b) => {
                                    let sb = &bucket[b];
                                    if (s.time, s.seq) < (sb.time, sb.seq) {
                                        best = Some(i);
                                    }
                                }
                            }
                        }
                    }
                    if let Some(i) = best {
                        let item = bucket.swap_remove(i);
                        self.len -= 1;
                        if self.len < self.buckets.len() / 2 && self.buckets.len() > INITIAL_BUCKETS
                        {
                            self.resize(self.buckets.len() / 2);
                        }
                        return Some(item);
                    }
                }
                // Advance to the next bucket (next day-slot).
                self.cursor = (self.cursor + 1) % n;
                self.cursor_day_start += self.width;
            }
            // A full year passed with nothing due: jump the calendar to
            // the earliest pending event (direct search, rare path).
            let (mut min_t, mut found) = (u64::MAX, false);
            for b in &self.buckets {
                for s in b {
                    if s.time.as_micros() < min_t {
                        min_t = s.time.as_micros();
                        found = true;
                    }
                }
            }
            debug_assert!(found, "len > 0 but no event found");
            if !found {
                return None;
            }
            self.cursor_day_start = (min_t / self.width) * self.width;
            self.cursor = self.bucket_of(min_t);
        }
    }

    /// Rebuild with `new_n` buckets; re-estimates the width as the mean
    /// gap between a sample of pending timestamps (clamped to ≥ 1 µs).
    fn resize(&mut self, new_n: usize) {
        let mut all: Vec<Scheduled<E>> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        // Estimate width from up to 64 sampled timestamps.
        let mut sample: Vec<u64> = all.iter().take(64).map(|s| s.time.as_micros()).collect();
        sample.sort_unstable();
        if sample.len() >= 2 {
            let span = sample[sample.len() - 1] - sample[0];
            let mean_gap = span / (sample.len() as u64 - 1);
            self.width = mean_gap.clamp(1, 10_000_000);
        }
        self.buckets = (0..new_n).map(|_| Vec::new()).collect();
        // Reposition the cursor at the earliest pending event.
        let min_t = all.iter().map(|s| s.time.as_micros()).min().unwrap_or(self.cursor_day_start);
        self.cursor_day_start = (min_t / self.width) * self.width;
        self.cursor = ((min_t / self.width) % new_n as u64) as usize;
        for s in all.drain(..) {
            let idx = ((s.time.as_micros() / self.width) % new_n as u64) as usize;
            self.buckets[idx].push(s);
        }
    }
}

impl<E> PendingSet<E> for CalendarQueue<E> {
    fn insert(&mut self, time: SimTime, event: E) {
        self.push(time, event);
    }
    fn pop_earliest(&mut self) -> Option<Scheduled<E>> {
        self.pop()
    }
    fn pending(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn pops_in_time_order_basic() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = CalendarQueue::new();
        let t = SimTime::from_millis(7);
        for i in 0..50 {
            q.push(t, i);
        }
        for i in 0..50 {
            assert_eq!(q.pop().unwrap().event, i, "tie order broken");
        }
    }

    #[test]
    fn agrees_with_binary_heap_on_random_mix() {
        let mut rng = Rng::new(99);
        let mut cq = CalendarQueue::new();
        let mut bh = crate::event::EventQueue::new();
        // Interleave pushes and pops; like a real DES, never insert
        // before the last popped timestamp. Compare full drain ordering.
        let mut pending = 0u32;
        let mut now = SimTime::ZERO;
        for step in 0..5_000u64 {
            if pending == 0 || rng.chance(0.6) {
                let t = now + crate::time::SimDuration::from_micros(rng.below(500_000));
                cq.push(t, step);
                bh.push(t, step);
                pending += 1;
            } else {
                let a = cq.pop().unwrap();
                let b = bh.pop().unwrap();
                assert_eq!((a.time, a.event), (b.time, b.event));
                now = a.time;
                pending -= 1;
            }
        }
        while let Some(b) = bh.pop() {
            let a = cq.pop().unwrap();
            assert_eq!((a.time, a.event), (b.time, b.event));
        }
        assert!(cq.is_empty());
    }

    #[test]
    fn sparse_far_future_events() {
        // Events far apart force the year-jump path.
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_secs(3600), "late");
        q.push(SimTime::from_secs(10), "early");
        assert_eq!(q.pop().unwrap().event, "early");
        assert_eq!(q.pop().unwrap().event, "late");
    }

    #[test]
    fn resize_keeps_all_events() {
        let mut q = CalendarQueue::with_geometry(4, 100);
        for i in 0..1000u64 {
            q.push(SimTime::from_micros(i * 37 % 10_000), i);
        }
        assert_eq!(q.len(), 1000);
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some(s) = q.pop() {
            assert!(s.time >= last);
            last = s.time;
            n += 1;
        }
        assert_eq!(n, 1000);
    }
}
