//! Run telemetry: deterministic event tracing, quantile summaries,
//! wall-clock phase profiling and machine-readable report export.
//!
//! The paper's evaluation (§IV, Figs. 7–9) reports *distributions* —
//! latency CDFs, continuity and satisfied-player ratios — so scalar
//! means are not enough to see QoE tails or perf regressions. This
//! module supplies the observability vocabulary the simulator threads
//! through its stack:
//!
//! * [`TraceRing`] / [`TraceRecord`] — a ring-buffered, sim-time-
//!   stamped event trace. Records are fixed-size `Copy` values (no
//!   allocation on the hot path); when the ring is full the oldest
//!   records are overwritten and the drop count is reported, so
//!   tracing never grows memory unboundedly.
//! * [`Quantiles`] — p50/p95/p99 (plus mean/min/max bounds) extracted
//!   from a [`Histogram`](crate::stats::Histogram).
//! * [`CdfPoint`] — sampled CDF curves for export, the exact shape
//!   Figures 8–9 plot.
//! * [`PhaseProfiler`] — wall-clock phase timing (setup / event loop /
//!   collect). Wall time never feeds back into the simulation, so
//!   determinism of simulated results is untouched.
//! * [`TelemetryReport`] — the per-run artifact, exported as one JSONL
//!   line (machine-readable trajectory seed) or CSV (CDF tables).
//!
//! Everything here is observation-only: no method draws randomness or
//! schedules events, which is what makes "telemetry on vs off yields
//! identical run summaries" a testable invariant.

use std::fmt::Write as _;
use std::time::Instant;

use crate::stats::Histogram;
use crate::time::SimTime;

/// One traced event: fixed-size, `Copy`, cheap enough for hot paths.
///
/// `kind` is a static subsystem-scoped name (`"sched.drop"`,
/// `"adapt.up"`, `"detector.confirm"` …); `key` identifies the entity
/// (player, supernode, host, fault index) and `value` carries the
/// measurement (packets dropped, detection ms, quality level …).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceRecord {
    /// Simulated instant of the event.
    pub at: SimTime,
    /// Static event name, `subsystem.event` style.
    pub kind: &'static str,
    /// Primary entity id (player, supernode, host, fault index).
    pub key: u64,
    /// Event measurement (meaning depends on `kind`).
    pub value: f64,
}

impl TraceRecord {
    /// Build a record.
    pub fn new(at: SimTime, kind: &'static str, key: u64, value: f64) -> Self {
        TraceRecord { at, kind, key, value }
    }

    /// Render as one JSON object (used by the trace tail export).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t_us\":{},\"kind\":\"{}\",\"key\":{},\"value\":{}}}",
            self.at.as_micros(),
            self.kind,
            self.key,
            json_f64(self.value)
        )
    }
}

/// Fixed-capacity ring buffer of [`TraceRecord`]s.
///
/// Pushing is O(1) and allocation-free after construction; once full,
/// new records overwrite the oldest. [`TraceRing::iter`] yields the
/// retained records in chronological order.
#[derive(Clone, Debug)]
pub struct TraceRing {
    buf: Vec<TraceRecord>,
    cap: usize,
    /// Index the next record will be written to (once saturated).
    next: usize,
    /// Total records ever pushed.
    pushed: u64,
}

impl TraceRing {
    /// A ring retaining the most recent `capacity` records
    /// (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        TraceRing { buf: Vec::with_capacity(cap.min(4096)), cap, next: 0, pushed: 0 }
    }

    /// Append a record, overwriting the oldest when full.
    #[inline]
    pub fn push(&mut self, record: TraceRecord) {
        self.pushed += 1;
        if self.buf.len() < self.cap {
            self.buf.push(record);
        } else {
            self.buf[self.next] = record;
            self.next = (self.next + 1) % self.cap;
        }
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True before the first push.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total records ever pushed (retained + overwritten).
    pub fn recorded(&self) -> u64 {
        self.pushed
    }

    /// Records lost to ring overwrite.
    pub fn dropped(&self) -> u64 {
        self.pushed - self.buf.len() as u64
    }

    /// Retained records in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        let (older, newer) = self.buf.split_at(self.next.min(self.buf.len()));
        newer.iter().chain(older.iter())
    }

    /// Count retained records of one kind.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.iter().filter(|r| r.kind == kind).count()
    }
}

/// Wall-clock phase profiler: setup / event loop / collect.
///
/// Phases are exclusive — entering one closes the previous. Wall time
/// is observation-only (it never influences simulated behaviour).
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    phases: Vec<(&'static str, f64)>,
    current: Option<(&'static str, Instant)>,
}

impl PhaseProfiler {
    /// An idle profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enter `phase`, closing the previous one.
    pub fn enter(&mut self, phase: &'static str) {
        self.close();
        self.current = Some((phase, Instant::now()));
    }

    /// Close the open phase (idempotent).
    pub fn close(&mut self) {
        if let Some((name, started)) = self.current.take() {
            let ms = started.elapsed().as_secs_f64() * 1e3;
            match self.phases.iter_mut().find(|(n, _)| *n == name) {
                Some((_, total)) => *total += ms,
                None => self.phases.push((name, ms)),
            }
        }
    }

    /// `(phase, wall ms)` rows in first-entry order.
    pub fn rows(&self) -> &[(&'static str, f64)] {
        &self.phases
    }

    /// Total wall milliseconds across closed phases.
    pub fn total_ms(&self) -> f64 {
        self.phases.iter().map(|(_, ms)| ms).sum()
    }
}

/// Quantile summary of one measured distribution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Quantiles {
    /// Observations behind the summary.
    pub count: u64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Lower bound (0-quantile of the histogram).
    pub min: f64,
    /// Upper bound (1-quantile of the histogram).
    pub max: f64,
}

impl Quantiles {
    /// Extract p50/p95/p99 and the bounding quantiles from `hist`
    /// (all zeros when the histogram is empty).
    pub fn from_histogram(hist: &Histogram) -> Self {
        let q = |p: f64| hist.quantile(p).unwrap_or(0.0);
        Quantiles {
            count: hist.count(),
            p50: q(0.50),
            p95: q(0.95),
            p99: q(0.99),
            min: q(0.0),
            max: q(1.0),
        }
    }
}

/// One point of a sampled CDF: `fraction` of observations are ≤ `x`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CdfPoint {
    /// Observation value.
    pub x: f64,
    /// Cumulative fraction in [0, 1].
    pub fraction: f64,
}

/// Sample `points` evenly spaced CDF points over the histogram's
/// range — the export format behind the paper's CDF figures.
pub fn cdf_points(hist: &Histogram, lo: f64, hi: f64, points: usize) -> Vec<CdfPoint> {
    let n = points.max(2);
    (0..n)
        .map(|i| {
            let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
            CdfPoint { x, fraction: hist.fraction_le(x) }
        })
        .collect()
}

/// Telemetry knobs: what to record and at what granularity.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetryConfig {
    /// Most recent trace records retained.
    pub trace_capacity: usize,
    /// Latency histogram range lower bound (ms).
    pub latency_lo_ms: f64,
    /// Latency histogram range upper bound (ms).
    pub latency_hi_ms: f64,
    /// Latency histogram bin count.
    pub latency_bins: usize,
    /// Continuity/ratio histogram bin count (range is always [0, 1]).
    pub ratio_bins: usize,
    /// CDF points sampled per exported curve.
    pub cdf_points: usize,
    /// Trace records included verbatim in the JSONL report (the tail
    /// of the ring; 0 exports counts only).
    pub trace_export: usize,
    /// Finished causal segment traces retained for export (ring tail;
    /// outcome counters stay exact past eviction). See
    /// [`crate::causal`].
    pub causal_tail: usize,
    /// Decision-provenance records retained per kind (adaptation and
    /// scheduler-drop rings). See [`crate::causal`].
    pub provenance_tail: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            trace_capacity: 65_536,
            latency_lo_ms: 0.0,
            latency_hi_ms: 1_000.0,
            latency_bins: 500,
            ratio_bins: 100,
            cdf_points: 50,
            trace_export: 0,
            causal_tail: 512,
            provenance_tail: 512,
        }
    }
}

impl TelemetryConfig {
    /// A latency histogram with this config's geometry.
    pub fn latency_histogram(&self) -> Histogram {
        Histogram::new(self.latency_lo_ms, self.latency_hi_ms, self.latency_bins)
    }

    /// A ratio ([0, 1]) histogram with this config's bin count.
    pub fn ratio_histogram(&self) -> Histogram {
        // hi is exclusive; nudge so a perfect 1.0 is not overflow.
        Histogram::new(0.0, 1.0 + 1e-9, self.ratio_bins)
    }
}

/// One named quantile row of a report.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantileRow {
    /// Metric name (e.g. `latency_ms.segment`).
    pub name: String,
    /// The quantile summary.
    pub quantiles: Quantiles,
    /// Exact mean of the underlying observations (from the collector,
    /// not re-derived from bins).
    pub mean: f64,
}

/// The per-run telemetry artifact.
///
/// Deterministic fields (scalars, quantiles, CDFs, trace counts) are a
/// pure function of the run seed; wall-clock phase times are the only
/// non-deterministic part and are clearly segregated under `phases`.
/// `PartialEq` compares every field, including the wall-clock
/// `phases` rows; deterministic-comparison users (the DST harness)
/// strip or ignore `phases` before comparing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetryReport {
    /// Run label (system under test, scenario name, …).
    pub run: String,
    /// Scalar metrics, in insertion order.
    pub scalars: Vec<(String, f64)>,
    /// Quantile summaries per distribution.
    pub quantiles: Vec<QuantileRow>,
    /// Sampled CDF curves per distribution.
    pub cdfs: Vec<(String, Vec<CdfPoint>)>,
    /// Wall-clock phase rows `(phase, ms)`.
    pub phases: Vec<(String, f64)>,
    /// Total trace records recorded.
    pub trace_recorded: u64,
    /// Trace records lost to ring overwrite.
    pub trace_dropped: u64,
    /// Exported tail of the trace (bounded by
    /// [`TelemetryConfig::trace_export`]).
    pub trace_tail: Vec<TraceRecord>,
}

/// How one scalar combines across per-shard reports in
/// [`TelemetryReport::merge_weighted`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScalarMerge {
    /// Add the per-shard values (counters, byte totals, event counts).
    Sum,
    /// Weight each shard's value by its merge weight (rates, ratios,
    /// means — weighted by player count they stay population-correct).
    WeightedMean,
    /// Take the largest per-shard value (peaks, high-water marks).
    Max,
}

impl TelemetryReport {
    /// An empty report for `run`.
    pub fn new(run: impl Into<String>) -> Self {
        TelemetryReport { run: run.into(), ..Default::default() }
    }

    /// Append a scalar metric.
    pub fn scalar(&mut self, name: impl Into<String>, value: f64) {
        self.scalars.push((name.into(), value));
    }

    /// Look up a scalar by name.
    pub fn get_scalar(&self, name: &str) -> Option<f64> {
        self.scalars.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Append a distribution: quantiles from `hist` plus the exact
    /// `mean`, and its sampled CDF when `cdf` is set.
    pub fn distribution(
        &mut self,
        name: impl Into<String>,
        hist: &Histogram,
        mean: f64,
        cfg: &TelemetryConfig,
        cdf: bool,
    ) {
        let name = name.into();
        self.quantiles.push(QuantileRow {
            name: name.clone(),
            quantiles: Quantiles::from_histogram(hist),
            mean,
        });
        if cdf && hist.count() > 0 {
            let lo = hist.quantile(0.0).unwrap_or(0.0);
            let hi = hist.quantile(1.0).unwrap_or(lo);
            self.cdfs.push((name, cdf_points(hist, lo, hi, cfg.cdf_points)));
        }
    }

    /// Look up a quantile row by name.
    pub fn get_quantiles(&self, name: &str) -> Option<&QuantileRow> {
        self.quantiles.iter().find(|r| r.name == name)
    }

    /// Engine throughput: events executed per wall-clock second of the
    /// event loop, derived from the `events` scalar and the
    /// `event_loop` phase row. `None` when either is missing or the
    /// phase took no measurable time.
    ///
    /// Deliberately a derived quantity, not a serialized scalar:
    /// phases are the one non-deterministic part of a report, and the
    /// determinism harness strips them before fingerprinting — a
    /// wall-clock scalar would poison every fingerprint.
    pub fn events_per_sec(&self) -> Option<f64> {
        let events = self.get_scalar("events")?;
        let ms = self.phases.iter().find(|(name, _)| name == "event_loop").map(|(_, ms)| *ms)?;
        // A zero-duration (or garbage) phase window must yield `None`,
        // not ±inf/NaN from the division below.
        if !ms.is_finite() || ms <= 0.0 {
            return None;
        }
        Some(events / (ms / 1000.0))
    }

    /// Deterministic merge of per-shard reports into one run-level
    /// report.
    ///
    /// `reports` carry one weight each (typically the shard's player
    /// count); `rule` decides how each scalar combines. Scalar names
    /// keep first-appearance order, but each scalar's contributions
    /// are folded in `(value, weight)` total order — not input order —
    /// so the merged values are exactly permutation-invariant (the
    /// proptest in `tests/telemetry.rs` pins this). Trace counts sum.
    /// Distributions (quantiles, CDFs), phase rows and trace tails
    /// stay per-shard — an exact quantile merge needs the raw
    /// observations, so the merged report deliberately carries none
    /// rather than fabricating them.
    pub fn merge_weighted(
        run: impl Into<String>,
        reports: &[(f64, &TelemetryReport)],
        rule: impl Fn(&str) -> ScalarMerge,
    ) -> TelemetryReport {
        let mut out = TelemetryReport::new(run);
        let mut names: Vec<&str> = Vec::new();
        for (_, r) in reports {
            for (name, _) in &r.scalars {
                if !names.contains(&name.as_str()) {
                    names.push(name);
                }
            }
            out.trace_recorded += r.trace_recorded;
            out.trace_dropped += r.trace_dropped;
        }
        let merged: Vec<(String, f64)> = names
            .into_iter()
            .map(|name| {
                // Canonicalize the fold order: floating-point addition
                // is not associative, so summing in input order would
                // make the merge depend on report permutation.
                let mut present: Vec<(f64, f64)> = reports
                    .iter()
                    .filter_map(|(w, r)| r.get_scalar(name).map(|v| (v, *w)))
                    .collect();
                present.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.total_cmp(&b.1)));
                let mut sum = 0.0;
                let mut weighted = 0.0;
                let mut weight_total = 0.0;
                let mut max = f64::NEG_INFINITY;
                for (v, w) in &present {
                    sum += v;
                    weighted += v * w;
                    weight_total += w;
                    max = max.max(*v);
                }
                let value = match rule(name) {
                    ScalarMerge::Sum => sum,
                    ScalarMerge::WeightedMean if weight_total > 0.0 => weighted / weight_total,
                    ScalarMerge::WeightedMean => 0.0,
                    ScalarMerge::Max if !present.is_empty() => max,
                    ScalarMerge::Max => 0.0,
                };
                (name.to_string(), value)
            })
            .collect();
        out.scalars = merged;
        out
    }

    /// Absorb phase rows from a profiler (closes the open phase).
    pub fn set_phases(&mut self, profiler: &mut PhaseProfiler) {
        profiler.close();
        self.phases = profiler.rows().iter().map(|&(n, ms)| (n.to_string(), ms)).collect();
    }

    /// Absorb trace counts and the export tail from a ring.
    pub fn set_trace(&mut self, ring: &TraceRing, cfg: &TelemetryConfig) {
        self.trace_recorded = ring.recorded();
        self.trace_dropped = ring.dropped();
        let skip = ring.len().saturating_sub(cfg.trace_export);
        self.trace_tail = ring.iter().skip(skip).copied().collect();
    }

    /// The whole report as one JSON object (JSONL line, no trailing
    /// newline). Key order is deterministic.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        let _ = write!(out, "\"run\":\"{}\"", json_escape(&self.run));
        out.push_str(",\"scalars\":{");
        for (i, (name, value)) in self.scalars.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(name), json_f64(*value));
        }
        out.push_str("},\"quantiles\":{");
        for (i, row) in self.quantiles.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let q = row.quantiles;
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"min\":{},\"max\":{}}}",
                json_escape(&row.name),
                q.count,
                json_f64(row.mean),
                json_f64(q.p50),
                json_f64(q.p95),
                json_f64(q.p99),
                json_f64(q.min),
                json_f64(q.max)
            );
        }
        out.push_str("},\"cdfs\":{");
        for (i, (name, points)) in self.cdfs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":[", json_escape(name));
            for (j, p) in points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},{}]", json_f64(p.x), json_f64(p.fraction));
            }
            out.push(']');
        }
        out.push_str("},\"phases_wall_ms\":{");
        for (i, (name, ms)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(name), json_f64(*ms));
        }
        let _ = write!(
            out,
            "}},\"trace\":{{\"recorded\":{},\"dropped\":{},\"tail\":[",
            self.trace_recorded, self.trace_dropped
        );
        for (i, r) in self.trace_tail.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.to_json());
        }
        out.push_str("]}}");
        out
    }

    /// The CDF curves as CSV (`distribution,x,fraction` rows).
    pub fn cdf_csv(&self) -> String {
        let mut out = String::from("distribution,x,fraction\n");
        for (name, points) in &self.cdfs {
            for p in points {
                let _ = writeln!(out, "{},{},{}", name, json_f64(p.x), json_f64(p.fraction));
            }
        }
        out
    }

    /// Append this report as one JSONL line to `path`, creating parent
    /// directories as needed.
    pub fn append_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write as _;
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        writeln!(file, "{}", self.to_jsonl())
    }
}

/// JSON-safe float rendering (finite shortest form; NaN/inf → null).
/// Public so downstream report writers (bench tables, the harness
/// failure report) emit floats the same canonical way.
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 1e15 {
            format!("{:.1}", x)
        } else {
            format!("{}", x)
        }
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn rec(ms: u64, kind: &'static str, key: u64) -> TraceRecord {
        TraceRecord::new(SimTime::ZERO + SimDuration::from_millis(ms), kind, key, ms as f64)
    }

    #[test]
    fn ring_retains_most_recent_in_order() {
        let mut ring = TraceRing::new(3);
        for i in 0..5 {
            ring.push(rec(i, "t.e", i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 2);
        let keys: Vec<u64> = ring.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![2, 3, 4], "oldest overwritten, order kept");
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let mut ring = TraceRing::new(8);
        ring.push(rec(1, "a.b", 1));
        ring.push(rec(2, "a.c", 2));
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.count_kind("a.b"), 1);
        let keys: Vec<u64> = ring.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![1, 2]);
    }

    #[test]
    fn quantiles_bound_the_mean() {
        let mut h = Histogram::new(0.0, 100.0, 50);
        let xs: Vec<f64> = (0..200).map(|i| (i % 97) as f64).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        for &x in &xs {
            h.record(x);
        }
        let q = Quantiles::from_histogram(&h);
        assert_eq!(q.count, 200);
        assert!(q.min <= mean && mean <= q.max, "{q:?} vs mean {mean}");
        assert!(q.p50 <= q.p95 && q.p95 <= q.p99, "monotone: {q:?}");
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let mut h = Histogram::new(0.0, 10.0, 20);
        for i in 0..100 {
            h.record(i as f64 / 10.0);
        }
        let points = cdf_points(&h, 0.0, 10.0, 21);
        assert_eq!(points.len(), 21);
        for w in points.windows(2) {
            assert!(w[1].fraction >= w[0].fraction, "CDF must be monotone");
        }
        assert!(points.last().unwrap().fraction > 0.99);
    }

    #[test]
    fn phase_profiler_accumulates() {
        let mut p = PhaseProfiler::new();
        p.enter("setup");
        p.enter("loop");
        p.enter("setup"); // re-entry accumulates into the same row
        p.close();
        let names: Vec<&str> = p.rows().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["setup", "loop"]);
        assert!(p.rows().iter().all(|(_, ms)| *ms >= 0.0));
        assert!(p.total_ms() >= 0.0);
    }

    #[test]
    fn report_jsonl_is_one_line_of_valid_shape() {
        let cfg = TelemetryConfig { trace_export: 2, ..Default::default() };
        let mut report = TelemetryReport::new("cloudfog/a");
        report.scalar("players", 400.0);
        report.scalar("satisfied_ratio", 0.9125);
        let mut h = cfg.latency_histogram();
        for i in 0..100 {
            h.record(i as f64);
        }
        report.distribution("latency_ms.segment", &h, 49.5, &cfg, true);
        let mut ring = TraceRing::new(4);
        for i in 0..6 {
            ring.push(rec(i, "sched.drop", i));
        }
        report.set_trace(&ring, &cfg);
        let line = report.to_jsonl();
        assert!(!line.contains('\n'), "JSONL must be single-line");
        assert!(line.starts_with('{') && line.ends_with('}'));
        for needle in [
            "\"run\":\"cloudfog/a\"",
            "\"players\":400.0",
            "\"latency_ms.segment\"",
            "\"p95\":",
            "\"recorded\":6",
            "\"dropped\":2",
            "\"kind\":\"sched.drop\"",
        ] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
        assert_eq!(report.trace_tail.len(), 2, "export bounded by trace_export");
        assert_eq!(report.get_scalar("players"), Some(400.0));
        assert!(report.get_quantiles("latency_ms.segment").is_some());
    }

    #[test]
    fn cdf_csv_has_header_and_rows() {
        let cfg = TelemetryConfig { cdf_points: 5, ..Default::default() };
        let mut report = TelemetryReport::new("x");
        let mut h = cfg.latency_histogram();
        h.record(10.0);
        h.record(20.0);
        report.distribution("lat", &h, 15.0, &cfg, true);
        let csv = report.cdf_csv();
        assert!(csv.starts_with("distribution,x,fraction\n"));
        assert_eq!(csv.lines().count(), 1 + 5);
    }

    #[test]
    fn jsonl_appends_to_file() {
        let dir = std::env::temp_dir().join("cloudfog_telemetry_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("runs.jsonl");
        let report = TelemetryReport::new("a");
        report.append_jsonl(&path).unwrap();
        report.append_jsonl(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_escaping_and_floats() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(2.5), "2.5");
    }

    #[test]
    fn merge_weighted_combines_scalars_by_rule() {
        let mut a = TelemetryReport::new("shard0");
        a.scalar("events", 100.0);
        a.scalar("mean_latency_ms", 50.0);
        a.scalar("peak_backlog", 7.0);
        a.trace_recorded = 10;
        a.trace_dropped = 1;
        let mut b = TelemetryReport::new("shard1");
        b.scalar("events", 300.0);
        b.scalar("mean_latency_ms", 90.0);
        b.scalar("peak_backlog", 3.0);
        b.scalar("only_in_b", 5.0);
        b.trace_recorded = 20;
        let rule = |name: &str| match name {
            "mean_latency_ms" => ScalarMerge::WeightedMean,
            "peak_backlog" => ScalarMerge::Max,
            _ => ScalarMerge::Sum,
        };
        // Shard 0 weighs 1 player, shard 1 weighs 3.
        let m = TelemetryReport::merge_weighted("merged", &[(1.0, &a), (3.0, &b)], rule);
        assert_eq!(m.run, "merged");
        assert_eq!(m.get_scalar("events"), Some(400.0));
        // (50·1 + 90·3) / 4 = 80.
        assert_eq!(m.get_scalar("mean_latency_ms"), Some(80.0));
        assert_eq!(m.get_scalar("peak_backlog"), Some(7.0));
        // A scalar missing from one shard still merges over the rest.
        assert_eq!(m.get_scalar("only_in_b"), Some(5.0));
        assert_eq!(m.trace_recorded, 30);
        assert_eq!(m.trace_dropped, 1);
        // No fabricated distributions or wall-clock rows.
        assert!(m.quantiles.is_empty() && m.cdfs.is_empty() && m.phases.is_empty());
        assert!(m.trace_tail.is_empty());
    }

    #[test]
    fn merge_weighted_of_empty_and_identity_cases() {
        let rule = |_: &str| ScalarMerge::Sum;
        let empty = TelemetryReport::merge_weighted("none", &[], rule);
        assert!(empty.scalars.is_empty());
        let mut a = TelemetryReport::new("solo");
        a.scalar("events", 42.0);
        let one = TelemetryReport::merge_weighted("one", &[(5.0, &a)], rule);
        assert_eq!(one.get_scalar("events"), Some(42.0));
    }

    #[test]
    fn ratio_histogram_accepts_perfect_scores() {
        let cfg = TelemetryConfig::default();
        let mut h = cfg.ratio_histogram();
        h.record(1.0);
        h.record(0.0);
        let q = Quantiles::from_histogram(&h);
        assert_eq!(q.count, 2);
        assert!(q.max >= 1.0 - 0.02, "1.0 must not land in overflow: {q:?}");
    }
}
