//! The pending-event set of the discrete-event engine.
//!
//! [`EventQueue`] is a binary-heap priority queue keyed on
//! `(SimTime, sequence)`. The sequence number is a monotonically
//! increasing insertion counter, which gives **FIFO ordering among
//! same-timestamp events** — without it, the relative order of
//! simultaneous events would depend on heap internals, and the
//! simulation would no longer be reproducible across refactorings.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled occurrence: an event payload plus its firing time.
#[derive(Clone, Debug)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Insertion sequence number; ties on `time` fire in insertion order.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-priority queue of future events, ordered by `(time, insertion)`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// An empty queue with space for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(cap), next_seq: 0 }
    }

    /// Schedule `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop()
    }

    /// Firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Drop all pending events (the sequence counter keeps advancing, so
    /// determinism across a clear is preserved).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().event, i);
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(2), ());
        q.push(SimTime::from_secs(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn clear_preserves_sequence_counter() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.scheduled_total(), 2);
    }
}
