//! # cloudfog-sim
//!
//! Deterministic discrete-event simulation substrate for the CloudFog
//! reproduction (Lin & Shen, *CloudFog: Towards High Quality of
//! Experience in Cloud Gaming*, ICPP 2015).
//!
//! The paper evaluates on PeerSim; this crate is the stand-in: a small,
//! fast, fully deterministic event engine plus the probability
//! distributions and streaming statistics the evaluation needs.
//!
//! * [`time`] — µs-resolution simulated clock types.
//! * [`event`] — binary-heap pending-event set with FIFO tie-breaking.
//! * [`calendar`] — calendar-queue alternative scheduler (ablation).
//! * [`engine`] — the `Model`/`Simulation` driver.
//! * [`rng`] — seeded xoshiro256** PRNG and the paper's distributions
//!   (Poisson, Pareto, power-law/Zipf, log-normal, …).
//! * [`stats`] — Welford, histograms, time-weighted means, EWMA,
//!   sliding-window means, ratio counters.
//! * [`series`] — time-bucketed metric series (QoE-over-time plots).
//! * [`telemetry`] — ring-buffered event tracing, quantile/CDF
//!   summaries, wall-clock phase profiling and JSONL/CSV run reports.
//! * [`causal`] — per-segment lifecycle spans, decision provenance and
//!   Eq. 12 latency attribution with Chrome-trace export.
//! * [`live`] — tick-synchronous metrics registry, SLO burn-rate
//!   alerting and streaming Prometheus/JSONL exposition.
//!
//! ## Quick example
//!
//! ```
//! use cloudfog_sim::prelude::*;
//!
//! struct Pinger { pongs: u32 }
//! enum Ev { Ping }
//!
//! impl Model for Pinger {
//!     type Event = Ev;
//!     fn handle(&mut self, _ev: Ev, sched: &mut Scheduler<'_, Ev, EventQueue<Ev>>) {
//!         self.pongs += 1;
//!         if self.pongs < 3 {
//!             sched.schedule_in(SimDuration::from_millis(10), Ev::Ping);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Pinger { pongs: 0 });
//! sim.seed(Ev::Ping);
//! let report = sim.run();
//! assert_eq!(sim.model.pongs, 3);
//! assert_eq!(report.end_time, SimTime::from_millis(20));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calendar;
pub mod causal;
pub mod engine;
pub mod event;
pub mod live;
pub mod rng;
pub mod series;
pub mod stats;
pub mod telemetry;
pub mod time;

/// Convenience re-exports of the types almost every consumer needs.
pub mod prelude {
    pub use crate::calendar::{CalendarQueue, PendingSet};
    pub use crate::causal::{
        AdaptProvenance, CausalLog, CausalReport, DropProvenance, DropShare, Outcome, SegmentTrace,
        Stage,
    };
    pub use crate::engine::{Model, RunReport, Scheduler, Simulation, StopReason};
    pub use crate::event::EventQueue;
    pub use crate::rng::Rng;
    pub use crate::series::{CounterSeries, DipReport, SpikeReport, TimeSeries};
    pub use crate::stats::{Ewma, Histogram, Ratio, SlidingMean, TimeWeighted, Welford};
    pub use crate::telemetry::{
        CdfPoint, PhaseProfiler, Quantiles, TelemetryConfig, TelemetryReport, TraceRecord,
        TraceRing,
    };
    pub use crate::time::{SimDuration, SimTime};
}
