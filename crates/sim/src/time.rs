//! Simulated time.
//!
//! The simulation clock is a monotonically non-decreasing counter of
//! **microseconds** since the start of the experiment. Microsecond
//! resolution is fine enough to order sub-millisecond network events
//! (the paper reasons in milliseconds) while a `u64` still covers
//! ~584 000 years of simulated time, so overflow is not a practical
//! concern for 4-day campaigns.
//!
//! `SimTime` is an absolute instant, `SimDuration` a length of time;
//! the usual instant/duration arithmetic is provided. Both are plain
//! `u64` newtypes: `Copy`, totally ordered, hashable and free to pass
//! around in hot event-loop code.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;
/// Microseconds per millisecond.
pub const MICROS_PER_MILLI: u64 = 1_000;

/// An absolute instant on the simulation clock (µs since experiment start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (µs).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The experiment origin, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel for deadlines that are never reached.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Instant `micros` microseconds after the origin.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Instant `millis` milliseconds after the origin.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * MICROS_PER_MILLI)
    }

    /// Instant `secs` seconds after the origin.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Whole microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds since the origin.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_MILLI as f64
    }

    /// Fractional seconds since the origin.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Duration since an earlier instant, saturating to zero if
    /// `earlier` is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// `self + d`, saturating at `SimTime::MAX`.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * MICROS_PER_MILLI)
    }

    /// Duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Duration of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600 * MICROS_PER_SEC)
    }

    /// Duration from fractional seconds, rounding to the nearest µs.
    /// Negative inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Duration from fractional milliseconds, rounding to the nearest µs.
    /// Negative inputs clamp to zero.
    pub fn from_millis_f64(millis: f64) -> Self {
        if millis <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((millis * MICROS_PER_MILLI as f64).round() as u64)
    }

    /// Whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_MILLI as f64
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// True iff this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by a non-negative factor, rounding to the nearest µs.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "negative duration scale");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(3).as_micros(), 3);
        assert_eq!(SimDuration::from_hours(1).as_secs_f64(), 3_600.0);
    }

    #[test]
    fn instant_duration_arithmetic() {
        let t0 = SimTime::from_millis(100);
        let d = SimDuration::from_millis(50);
        assert_eq!(t0 + d, SimTime::from_millis(150));
        assert_eq!((t0 + d) - t0, d);
        assert_eq!(t0 - d, SimTime::from_millis(50));
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_millis(10);
        let late = SimTime::from_millis(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(10));
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
        assert_eq!(
            SimDuration::from_millis(5).saturating_sub(SimDuration::from_millis(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_secs_f64(0.0125);
        assert_eq!(d.as_micros(), 12_500);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        let m = SimDuration::from_millis_f64(1.5);
        assert_eq!(m.as_micros(), 1_500);
        assert_eq!(SimDuration::from_millis_f64(-0.1), SimDuration::ZERO);
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_micros(25_000));
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_micros(250)), "0.250ms");
    }
}
