//! Streaming statistics used to aggregate simulation metrics.
//!
//! Everything here is single-pass and allocation-light so it can be
//! updated from the hot event loop:
//!
//! * [`Welford`] — numerically stable online mean/variance;
//! * [`Histogram`] — fixed-width bins with percentile queries;
//! * [`TimeWeighted`] — time-weighted average of a piecewise-constant
//!   signal (e.g. buffer occupancy, utilization);
//! * [`Ewma`] — exponentially weighted moving average (the propagation
//!   estimator of Eq. 13 uses the sliding-window variant
//!   [`SlidingMean`] to match the paper's "average of the last m
//!   packets" exactly);
//! * [`Ratio`] — success/trial counters (coverage, satisfaction).

use crate::time::SimTime;

/// Welford's online algorithm for mean and variance.
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-width-bin histogram over `[lo, hi)` with overflow/underflow
/// bins, supporting percentile queries by linear interpolation within
/// a bin.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Histogram over `[lo, hi)` with `bins` equal-width bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0);
        Histogram { lo, hi, bins: vec![0; bins], underflow: 0, overflow: 0, count: 0 }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `q`-quantile in `[0,1]`; returns `lo`/`hi` boundaries for mass in
    /// the under/overflow bins. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut acc = self.underflow as f64;
        if target <= acc {
            return Some(self.lo);
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &b) in self.bins.iter().enumerate() {
            let next = acc + b as f64;
            if target <= next && b > 0 {
                let frac = (target - acc) / b as f64;
                return Some(self.lo + w * (i as f64 + frac));
            }
            acc = next;
        }
        Some(self.hi)
    }

    /// Fraction of observations ≤ `x` (counting underflow as below and
    /// overflow as above).
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if x < self.lo {
            return 0.0;
        }
        if x >= self.hi {
            // Overflow mass sits at ≥ hi; treat it as above any finite x.
            return (self.count - self.overflow) as f64 / self.count as f64;
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        let idx = ((x - self.lo) / w) as usize;
        let mut acc = self.underflow;
        for (i, &b) in self.bins.iter().enumerate() {
            if i > idx {
                break;
            }
            if i < idx {
                acc += b;
            } else {
                // Partial bin, linear interpolation.
                let frac = ((x - self.lo) - i as f64 * w) / w;
                acc += (b as f64 * frac).round() as u64;
            }
        }
        acc as f64 / self.count as f64
    }

    /// `(upper edge, count)` per bin in ascending-edge order, with the
    /// underflow mass folded into the lowest bin — the shape a
    /// cumulative `le`-bucket exposition (Prometheus) wants. Overflow
    /// mass is *not* included; it is `count()` minus the bucket sum
    /// and belongs in the consumer's `+Inf` bucket.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins.iter().enumerate().map(move |(i, &b)| {
            let extra = if i == 0 { self.underflow } else { 0 };
            (self.lo + w * (i + 1) as f64, b + extra)
        })
    }

    /// Merge another histogram with identical geometry.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            (self.lo, self.hi, self.bins.len()) == (other.lo, other.hi, other.bins.len()),
            "histogram geometry mismatch"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
    }
}

/// Time-weighted average of a piecewise-constant signal.
///
/// Call [`TimeWeighted::set`] whenever the signal changes; the value
/// holds until the next change.
#[derive(Clone, Copy, Debug)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    started: bool,
    start_time: SimTime,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// An empty accumulator.
    pub fn new() -> Self {
        TimeWeighted {
            last_time: SimTime::ZERO,
            last_value: 0.0,
            weighted_sum: 0.0,
            started: false,
            start_time: SimTime::ZERO,
        }
    }

    /// Record that the signal takes `value` from time `at` onward.
    pub fn set(&mut self, at: SimTime, value: f64) {
        if self.started {
            debug_assert!(at >= self.last_time, "time-weighted signal set in the past");
            let dt = at.saturating_since(self.last_time).as_secs_f64();
            self.weighted_sum += self.last_value * dt;
        } else {
            self.started = true;
            self.start_time = at;
        }
        self.last_time = at;
        self.last_value = value;
    }

    /// Time-weighted mean over `[first set, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        if !self.started {
            return 0.0;
        }
        let tail = now.saturating_since(self.last_time).as_secs_f64();
        let total = now.saturating_since(self.start_time).as_secs_f64();
        if total <= 0.0 {
            return self.last_value;
        }
        (self.weighted_sum + self.last_value * tail) / total
    }

    /// The current (most recently set) value.
    pub fn current(&self) -> f64 {
        self.last_value
    }
}

/// Exponentially weighted moving average.
#[derive(Clone, Copy, Debug)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// EWMA with smoothing factor `alpha ∈ (0, 1]` (weight of the
    /// newest observation).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        Ewma { alpha, value: None }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// Current average (`None` before the first observation).
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// Mean over a sliding window of the last `m` observations — the
/// paper's propagation-delay estimator (Eq. 13) averages the last `m`
/// packets' propagation delays.
#[derive(Clone, Debug)]
pub struct SlidingMean {
    window: Vec<f64>,
    cap: usize,
    next: usize,
    sum: f64,
}

impl SlidingMean {
    /// Mean over the last `cap` observations (`cap ≥ 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1);
        SlidingMean { window: Vec::with_capacity(cap), cap, next: 0, sum: 0.0 }
    }

    /// Fold in one observation, evicting the oldest when full.
    pub fn push(&mut self, x: f64) {
        if self.window.len() < self.cap {
            self.window.push(x);
            self.sum += x;
        } else {
            self.sum += x - self.window[self.next];
            self.window[self.next] = x;
            self.next = (self.next + 1) % self.cap;
        }
    }

    /// Current mean (`None` before the first observation).
    pub fn mean(&self) -> Option<f64> {
        if self.window.is_empty() {
            None
        } else {
            Some(self.sum / self.window.len() as f64)
        }
    }

    /// Number of observations currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True before the first observation.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }
}

/// A ratio counter: successes over trials.
#[derive(Clone, Copy, Debug, Default)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// An empty ratio.
    pub fn new() -> Self {
        Ratio::default()
    }

    /// Record one trial with the given outcome.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Record `hits` successes out of `total` trials.
    pub fn record_many(&mut self, hits: u64, total: u64) {
        debug_assert!(hits <= total);
        self.hits += hits;
        self.total += total;
    }

    /// Successes.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Trials.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// hits/total (0 when no trials).
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// Merge another ratio.
    pub fn merge(&mut self, other: &Ratio) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn welford_empty() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        let mut a = Welford::new();
        a.merge(&w);
        assert_eq!(a.count(), 0);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 50.0).abs() < 1.5, "p50 {p50}");
        let p95 = h.quantile(0.95).unwrap();
        assert!((p95 - 95.0).abs() < 1.5, "p95 {p95}");
        assert_eq!(h.quantile(0.0).unwrap(), 0.0);
    }

    #[test]
    fn histogram_overflow_and_fraction() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-5.0, 1.0, 2.0, 3.0, 50.0, 60.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 6);
        let f = h.fraction_le(5.0);
        assert!((f - 4.0 / 6.0).abs() < 0.01, "{f}");
        assert!(h.quantile(1.0).unwrap() >= 10.0 - 1e-9);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let mut b = Histogram::new(0.0, 10.0, 10);
        a.record(1.0);
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new();
        tw.set(SimTime::from_secs(0), 1.0);
        tw.set(SimTime::from_secs(10), 3.0);
        // 10 s at 1.0 then 10 s at 3.0 → mean 2.0 at t=20.
        let m = tw.mean(SimTime::from_secs(20));
        assert!((m - 2.0).abs() < 1e-12, "{m}");
        assert_eq!(tw.current(), 3.0);
        assert_eq!(TimeWeighted::new().mean(SimTime::from_secs(5)), 0.0);
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.5);
        assert!(e.value().is_none());
        for _ in 0..50 {
            e.push(10.0);
        }
        assert!((e.value().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sliding_mean_window() {
        let mut s = SlidingMean::new(3);
        assert!(s.mean().is_none());
        s.push(1.0);
        s.push(2.0);
        s.push(3.0);
        assert_eq!(s.mean().unwrap(), 2.0);
        s.push(10.0); // evicts 1.0 → window {2,3,10}
        assert_eq!(s.mean().unwrap(), 5.0);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn ratio_basics() {
        let mut r = Ratio::new();
        assert_eq!(r.value(), 0.0);
        r.record(true);
        r.record(false);
        r.record_many(8, 8);
        assert_eq!(r.hits(), 9);
        assert_eq!(r.total(), 10);
        assert!((r.value() - 0.9).abs() < 1e-12);
        let mut other = Ratio::new();
        other.record(false);
        r.merge(&other);
        assert_eq!(r.total(), 11);
    }
}
