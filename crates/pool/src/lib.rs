//! Deterministic work-stealing execution on scoped threads.
//!
//! The vendored rayon shim is sequential (the build environment is
//! offline), so every `par_iter` call site in the workspace silently
//! ran on one core. This crate is the real thing: workers pull item
//! indices from a shared atomic counter and run on
//! [`std::thread::scope`] threads — genuine OS parallelism with no
//! allocation-per-task machinery.
//!
//! Determinism is structural, not scheduled: results are placed back
//! by item index ([`map_indexed`]) or written through disjoint chunks
//! ([`for_each_chunk_mut`]), so *which worker ran which item, and in
//! what order items finished, provably cannot change the output*. The
//! 1-worker vs N-worker differential tests in `crates/game` and the
//! harness pin exactly that property.
//!
//! `#![forbid(unsafe_code)]`: scoped threads give the borrow checker
//! everything it needs; no `Send`/`Sync` assertions are hand-rolled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count for parallel fan-out: the `CLOUDFOG_WORKERS`
/// environment variable when set (clamped to ≥1), otherwise the
/// machine's available parallelism.
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("CLOUDFOG_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Map `f` over `items` on up to `workers` scoped threads, returning
/// results in item order.
///
/// Workers steal indices from a shared counter (no static chunking, so
/// one slow item cannot strand a whole stripe) and each result is
/// placed into its item's slot — the output is byte-identical for any
/// worker count, including 1 (which short-circuits to a plain
/// sequential loop with no thread spawn).
///
/// Panics in `f` propagate to the caller.
pub fn map_indexed<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("pool worker panicked")).collect()
    });
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (i, r) in per_worker.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} produced twice");
        slots[i] = Some(r);
    }
    slots.into_iter().map(|s| s.expect("every index runs exactly once")).collect()
}

/// Run `f` on every element of `items`, fanning contiguous chunks out
/// across up to `workers` scoped threads.
///
/// Each element is visited exactly once and only through its own `&mut`
/// (chunks are disjoint), so the result is identical for any worker
/// count — the data-parallel "each item only touches itself" shape.
/// `workers <= 1` short-circuits to a sequential loop.
pub fn for_each_chunk_mut<T, F>(workers: usize, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 {
        for t in items.iter_mut() {
            f(t);
        }
        return;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for part in items.chunks_mut(chunk) {
            scope.spawn(|| {
                for t in part {
                    f(t);
                }
            });
        }
    });
}

/// Like [`for_each_chunk_mut`], but hands `f` the item's index too.
///
/// Sharded drivers use this to step every sub-world toward a tick
/// boundary in parallel: each world is visited exactly once through
/// its own `&mut`, chunks are disjoint and contiguous, and the index
/// identifies the shard without interior mutability. Identical output
/// for any worker count; `workers <= 1` short-circuits to a
/// sequential loop.
pub fn for_each_indexed_mut<T, F>(workers: usize, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 {
        for (i, t) in items.iter_mut().enumerate() {
            f(i, t);
        }
        return;
    }
    let chunk = n.div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        for (c, part) in items.chunks_mut(chunk).enumerate() {
            let base = c * chunk;
            scope.spawn(move || {
                for (off, t) in part.iter_mut().enumerate() {
                    f(base + off, t);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_indexed_preserves_item_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = map_indexed(8, &items, |i, &x| {
            assert_eq!(i as u64, x);
            x * x
        });
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn map_indexed_is_worker_count_invariant() {
        let items: Vec<u64> = (0..257).collect();
        let one = map_indexed(1, &items, |i, &x| (i, x.wrapping_mul(0x9E37_79B9)));
        for workers in [2, 3, 4, 7, 16] {
            let many = map_indexed(workers, &items, |i, &x| (i, x.wrapping_mul(0x9E37_79B9)));
            assert_eq!(one, many, "workers={workers}");
        }
    }

    #[test]
    fn map_indexed_handles_empty_and_singleton() {
        let empty: Vec<u8> = Vec::new();
        assert!(map_indexed(4, &empty, |_, &x| x).is_empty());
        assert_eq!(map_indexed(4, &[9u8], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn map_indexed_actually_runs_every_item_once() {
        let calls = AtomicU64::new(0);
        let items: Vec<u32> = (0..100).collect();
        let _ = map_indexed(5, &items, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn for_each_chunk_mut_is_worker_count_invariant() {
        let mut one: Vec<u64> = (0..513).collect();
        for_each_chunk_mut(1, &mut one, |x| *x = x.wrapping_mul(31).wrapping_add(7));
        for workers in [2, 4, 9] {
            let mut many: Vec<u64> = (0..513).collect();
            for_each_chunk_mut(workers, &mut many, |x| *x = x.wrapping_mul(31).wrapping_add(7));
            assert_eq!(one, many, "workers={workers}");
        }
    }

    #[test]
    fn for_each_indexed_mut_sees_every_index_once() {
        let mut one: Vec<u64> = vec![0; 257];
        for_each_indexed_mut(1, &mut one, |i, x| *x = (i as u64).wrapping_mul(0x9E37_79B9));
        for workers in [2, 3, 5, 8] {
            let mut many: Vec<u64> = vec![0; 257];
            for_each_indexed_mut(workers, &mut many, |i, x| {
                *x = (i as u64).wrapping_mul(0x9E37_79B9)
            });
            assert_eq!(one, many, "workers={workers}");
        }
        let mut empty: Vec<u64> = Vec::new();
        for_each_indexed_mut(4, &mut empty, |_, _| unreachable!());
    }

    #[test]
    fn default_workers_is_at_least_one() {
        assert!(default_workers() >= 1);
    }
}
